"""The network fabric: moves packets between hosts.

:class:`Network` ties the pieces together -- a simulator, a latency
model, an IP allocator and the set of hosts.  Transmitting a packet
walks the same pipeline a real packet would:

1. serialisation onto the sender's uplink (queueing behind earlier
   packets),
2. propagation across the wide area (geo distance, route inflation,
   per-packet jitter, optional random loss),
3. the receiver's ingress shaper, if a bandwidth cap is installed
   (Section 4.4's tc/ifb position) -- packets may be delayed or
   tail-dropped here,
4. serialisation on the receiver's downlink, then delivery to the
   bound port handler.

All randomness flows through one seeded generator, so experiments are
reproducible end to end (design goal D3).

**The fast lane.**  The slow pipeline costs three heap events per
packet (``_propagate`` at departure, ``_arrive`` at arrival,
``deliver`` at delivery).  Each event exists to pin *stateful* work to
its correct simulation time and global order: rng draws (loss, jitter)
must happen in event order because the generator is shared, and the
destination downlink's virtual clock must be advanced in arrival order
because reservations do not commute.  Whenever a stage provably does
nothing stateful, the fast lane removes its event while reproducing
the remaining work bit-identically:

* If the sender-side stage draws nothing (no base loss, no scripted
  egress loss, zero jitter scale) the ``_propagate`` event is skipped:
  the hop delay is deterministic, so the next stage is scheduled
  directly from ``transmit``.
* If the receiver-side stage draws nothing and has no shaper, the
  ``_arrive`` event is fused into the delivery event: the downlink
  reservation is pushed onto the link's pending-arrival buffer (which
  flushes in arrival order with arithmetic identical to an eager
  reservation -- see :meth:`AccessLink.flush_pending_downlink`) and a
  single fused delivery event is scheduled at the no-backlog delivery
  estimate.  If the flush reveals queueing, the event re-arms itself
  at the true reservation time.

Both fusions are guarded by the links' scheduled-change registries
(:meth:`AccessLink.quiet_through`): a packet whose flight window
overlaps any registered timeline boundary travels the exact slow path,
so conditions are always read (and rng always drawn) at the times and
in the order the slow path would have used.  ``fast_lane_epoch_misses``
counts packets whose destination link was mutated *without*
registration while they were fused in flight -- zero in any scripted
scenario, and the equivalence tests assert it stays zero.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, RoutingError
from .address import IpAllocator
from .burst import PacketTrain
from .clock import Clock, PERFECT_CLOCK
from .geo import GeoPoint, LatencyModel
from .link import AccessLink
from .node import Host
from .packet import HEADER_OVERHEAD_BYTES, Packet, reserve_packet_ids
from .simulator import Simulator

#: Process-wide default for new networks; the bit-identity tests (and
#: anyone debugging a suspected fast-lane divergence) flip this off.
FAST_LANE_DEFAULT = True

#: Process-wide default for the burst event core (train commits).  Like
#: the fast lane, results are bit-identical either way: a train is only
#: accepted in bulk when the vectorised arithmetic provably matches the
#: per-packet cascade, and every ambiguous train is refused wholesale.
BURST_DEFAULT = True


class Network:
    """A geographic packet network with attached hosts.

    Attributes:
        simulator: The event loop everything runs on.
        latency_model: Distance -> delay model for host pairs.
        base_loss_rate: Probability that any wide-area traversal loses
            the packet (independent of shaper drops).  Default 0: the
            paper's cloud paths are effectively loss-free at the rates
            measured; residential experiments may raise it.
        fast_lane: Whether the fused packet path may engage (results
            are bit-identical either way; disabling it exists for the
            equivalence tests and for debugging).
    """

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        latency_model: Optional[LatencyModel] = None,
        rng: Optional[np.random.Generator] = None,
        base_loss_rate: float = 0.0,
        fast_lane: Optional[bool] = None,
        burst: Optional[bool] = None,
    ) -> None:
        if not 0.0 <= base_loss_rate < 1.0:
            raise ConfigurationError(f"loss rate out of range: {base_loss_rate}")
        self.simulator = simulator if simulator is not None else Simulator()
        self.latency_model = (
            latency_model if latency_model is not None else LatencyModel()
        )
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.base_loss_rate = base_loss_rate
        self.fast_lane = FAST_LANE_DEFAULT if fast_lane is None else fast_lane
        self.burst = BURST_DEFAULT if burst is None else burst
        self._hosts_by_ip: Dict[str, Host] = {}
        self._hosts_by_name: Dict[str, Host] = {}
        self._ip_allocator = IpAllocator()
        self._path_cache: Dict[Tuple[str, str], Tuple[float, float]] = {}
        self.packets_lost = 0
        self.packets_shaper_dropped = 0
        self.packets_condition_lost = 0
        self.fast_lane_fused = 0
        self.fast_lane_sender_fused = 0
        self.fast_lane_rearmed = 0
        self.fast_lane_epoch_misses = 0
        self.burst_trains = 0
        self.burst_packets = 0

    # ----------------------------------------------------------------- #
    # Topology.
    # ----------------------------------------------------------------- #

    def add_host(
        self,
        name: str,
        location: GeoPoint,
        link: Optional[AccessLink] = None,
        clock: Clock = PERFECT_CLOCK,
        tier: str = "client",
    ) -> Host:
        """Create a host, allocate it an address and attach it.

        Raises :class:`~repro.errors.ConfigurationError` on duplicate
        host names; experiments address hosts by name.
        """
        if name in self._hosts_by_name:
            raise ConfigurationError(f"duplicate host name: {name!r}")
        ip = self._ip_allocator.allocate(tier)
        host = Host(
            name=name,
            ip=ip,
            location=location,
            network=self,
            link=link,
            clock=clock,
        )
        self._hosts_by_ip[ip] = host
        self._hosts_by_name[name] = host
        self._path_cache.clear()
        return host

    def host_by_ip(self, ip: str) -> Host:
        """Look up a host by address."""
        try:
            return self._hosts_by_ip[ip]
        except KeyError:
            raise RoutingError(f"no host with ip {ip!r}") from None

    def host_by_name(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self._hosts_by_name[name]
        except KeyError:
            raise RoutingError(f"no host named {name!r}") from None

    def hosts(self) -> list[Host]:
        """All attached hosts, in attach order."""
        return list(self._hosts_by_name.values())

    # ----------------------------------------------------------------- #
    # Path properties.
    # ----------------------------------------------------------------- #

    def _path_params(self, a: Host, b: Host) -> Tuple[float, float]:
        """Cached (base one-way delay, jitter scale) for a host pair.

        Locations and the latency model are fixed after attachment, so
        both values are pure functions of the pair; caching them takes
        a haversine + exp off every packet.  The cached floats are the
        model's own outputs, so downstream arithmetic is unchanged.
        """
        key = (a.ip, b.ip)
        cached = self._path_cache.get(key)
        if cached is None:
            base = self.latency_model.one_way_delay_s(a.location, b.location)
            scale = self.latency_model.jitter_scale_s(a.location, b.location)
            cached = (base, scale)
            self._path_cache[key] = cached
        return cached

    def one_way_delay(
        self, a: Host, b: Host, sample_jitter: bool = False
    ) -> float:
        """One-way wide-area delay between two hosts.

        With ``sample_jitter`` a random per-packet jitter component is
        added, drawn from a gamma distribution (always positive, long
        tail) scaled by the latency model's jitter fraction.

        Scripted access conditions contribute too: each endpoint's
        link-level latency adder extends the path, and link-level
        jitter scales draw extra gamma components (both are exact
        no-ops -- no rng consumed -- while the adders are zero, which
        is what keeps static sessions bit-identical).
        """
        base, scale = self._path_params(a, b)
        base += a.link.extra_latency_s + b.link.extra_latency_s
        if not sample_jitter:
            return base
        if scale > 0:
            base += float(self.rng.gamma(shape=2.0, scale=scale / 2.0))
        for link in (a.link, b.link):
            if link.extra_jitter_s > 0:
                base += float(
                    self.rng.gamma(shape=2.0, scale=link.extra_jitter_s / 2.0)
                )
        return base

    def nominal_rtt(self, a: Host, b: Host) -> float:
        """Jitter-free round-trip time between two hosts."""
        return 2.0 * self.one_way_delay(a, b, sample_jitter=False)

    # ----------------------------------------------------------------- #
    # Transmission pipeline.
    # ----------------------------------------------------------------- #

    def _fast_plan(self, source: Host, destination: Host) -> list:
        """Recompute a pair's full-fusion plan (the cache-miss path).

        A plan is ``[src_epoch, dst_epoch, eligible, delay]``: whether
        the *entire* chain is currently draw-free and shaper-free for
        this pair, and if so the deterministic hop delay.  Every
        condition the eligibility test reads (loss rates, jitter
        adders, latency adders, shaper presence) is only mutable
        through link methods that bump ``conditions_epoch``, so two
        integer comparisons (done inline in :meth:`transmit`)
        revalidate the whole predicate on later packets.
        """
        source_link = source.link
        destination_link = destination.link
        base, scale = self._path_params(source, destination)
        eligible = (
            scale == 0.0
            and source_link.loss_rate == 0.0
            and source_link.extra_jitter_s == 0.0
            and destination_link.loss_rate == 0.0
            and destination_link.extra_jitter_s == 0.0
            and destination_link.ingress_shaper is None
        )
        delay = base
        delay += (
            source_link.extra_latency_s + destination_link.extra_latency_s
        )
        plan = [
            source_link.conditions_epoch,
            destination_link.conditions_epoch,
            eligible,
            delay,
        ]
        source.fast_plans[destination.ip] = plan
        return plan

    def transmit(self, packet: Packet) -> None:
        """Entry point used by :meth:`Host.send`."""
        hosts = self._hosts_by_ip
        src_ip = packet.src.ip
        dst_ip = packet.dst.ip
        source = hosts.get(src_ip)
        if source is None:
            raise RoutingError(f"no host with ip {src_ip!r}")
        destination = hosts.get(dst_ip)
        if destination is None:
            raise RoutingError(f"no route to {dst_ip!r}")
        simulator = self.simulator
        now = simulator.now
        source_link = source.link
        departure = source_link.reserve_uplink(now, packet.wire_bytes)
        # Sender-side fusion: when the whole chain is provably
        # stateless (no draw at departure, none at arrival, no shaper)
        # and no scripted change overlaps the flight window, skip both
        # intermediate events and schedule the fused delivery directly.
        if self.fast_lane and self.base_loss_rate == 0.0:
            destination_link = destination.link
            plan = source.fast_plans.get(dst_ip)
            if (
                plan is None
                or plan[0] != source_link.conditions_epoch
                or plan[1] != destination_link.conditions_epoch
            ):
                plan = self._fast_plan(source, destination)
            if plan[2]:
                arrival = departure + plan[3]
                # The truthiness pre-checks skip two method calls per
                # packet in the (typical) no-timeline case.
                if (
                    not source_link._scheduled_changes
                    or source_link.quiet_through(now, departure)
                ) and (
                    not destination_link._scheduled_changes
                    or destination_link.quiet_through(now, arrival)
                ):
                    self.fast_lane_sender_fused += 1
                    self._schedule_fused(packet, destination, arrival)
                    return
        simulator.schedule_at(departure, self._propagate, packet, source, destination)

    def transmit_train(self, source: Host, train: PacketTrain) -> int:
        """Attempt an all-or-nothing burst commit of a packet train.

        Returns ``len(train)`` when the whole train was executed as one
        array-level commit (per-packet departures, arrivals, downlink
        reservations, captures and the receiver handoff all vectorised,
        zero heap events), or ``0`` when any eligibility check failed --
        in which case *nothing* was mutated and the caller must emit
        the train through the exact per-packet path.

        The eligibility checks collectively prove the vectorised
        arithmetic is bit-identical to the per-packet cascade: a stable
        draw-free fusion plan (no RNG anywhere on the chain), idle and
        non-overlapping serialisers on both ends (every scalar
        reservation would start at the packet's own timestamp), no
        scripted condition change inside the flight window, no other
        heap event at or before the last delivery (atomicity: nothing
        can mutate links or interleave with the cascade's ordering),
        and the last delivery inside the run horizon (packets the slow
        path would leave in flight stay in flight).
        """
        n = len(train)
        if not self.burst or n < 2:
            return 0
        if not self.fast_lane or self.base_loss_rate != 0.0:
            return 0
        destination = self._hosts_by_ip.get(train.dst.ip)
        if destination is None or destination is source:
            return 0
        handler = destination._handlers.get(train.dst.port)
        if handler is None or not hasattr(handler, "on_train"):
            return 0
        source_link = source.link
        destination_link = destination.link
        plan = source.fast_plans.get(train.dst.ip)
        if (
            plan is None
            or plan[0] != source_link.conditions_epoch
            or plan[1] != destination_link.conditions_epoch
        ):
            plan = self._fast_plan(source, destination)
        if not plan[2]:
            return 0
        simulator = self.simulator
        now = simulator.now
        times = train.times
        if times[0] < now:
            return 0
        sizes = np.asarray(train.payload_sizes, dtype=np.int64)
        wires_arr = sizes + HEADER_OVERHEAD_BYTES
        # Mirrors reserve_uplink / flush_pending_downlink arithmetic
        # operation for operation (wire * 8.0 / rate, added to the
        # start time), so each element is bit-identical to the scalar
        # cascade's result under the idle-serialiser preconditions.
        departures = times + wires_arr * 8.0 / source_link.uplink_bps
        arrivals = departures + plan[3]
        deliveries = arrivals + wires_arr * 8.0 / destination_link.downlink_bps
        last_delivery = float(deliveries[-1])
        if source_link._uplink_free > times[0] or bool(
            np.any(departures[:-1] > times[1:])
        ):
            return 0
        if destination_link._pending_downlink or (
            destination_link._downlink_free > arrivals[0]
        ) or bool(np.any(deliveries[:-1] > arrivals[1:])):
            return 0
        if source_link._scheduled_changes and not source_link.quiet_through(
            now, float(departures[-1])
        ):
            return 0
        if (
            destination_link._scheduled_changes
            and not destination_link.quiet_through(now, last_delivery)
        ):
            return 0
        # Atomicity: any event at or before the last delivery could
        # mutate link state mid-train or must order between deliveries
        # (an event already queued at a tied time has a lower sequence
        # number than anything the cascade would push, so it fires
        # first there -- eager bulk delivery would invert that).
        if simulator.peek_time() <= last_delivery:
            return 0
        if last_delivery > simulator.horizon:
            return 0
        source_link._uplink_free = float(departures[-1])
        destination_link._downlink_free = last_delivery
        packet_id_start = reserve_packet_ids(n)
        wires = wires_arr.tolist()
        self.fast_lane_sender_fused += n
        self.fast_lane_fused += n
        self.burst_trains += 1
        self.burst_packets += n
        source._commit_train_sent(train, wires, packet_id_start)
        destination._deliver_train(
            train, deliveries, wires, packet_id_start, handler
        )
        return n

    def _propagate(self, packet: Packet, source: Host, destination: Host) -> None:
        rng = self.rng
        if self.base_loss_rate > 0 and rng.random() < self.base_loss_rate:
            self.packets_lost += 1
            return
        source_link = source.link
        # Scripted egress loss (e.g. a handover outage at the sender's
        # access).  The draw only happens when a timeline has set a
        # loss rate, so static sessions consume no randomness here.
        if source_link.loss_rate > 0 and rng.random() < source_link.loss_rate:
            self.packets_condition_lost += 1
            return
        destination_link = destination.link
        base, scale = self._path_params(source, destination)
        delay = base
        delay += source_link.extra_latency_s + destination_link.extra_latency_s
        if scale > 0:
            delay += float(rng.gamma(shape=2.0, scale=scale / 2.0))
        for link in (source_link, destination_link):
            if link.extra_jitter_s > 0:
                delay += float(
                    rng.gamma(shape=2.0, scale=link.extra_jitter_s / 2.0)
                )
        now = self.simulator.now
        arrival = now + delay
        # Receiver-side fusion: no draw, no shaper, and no scripted
        # change before the packet lands -> one fused delivery event.
        if (
            self.fast_lane
            and destination_link.loss_rate == 0.0
            and destination_link.ingress_shaper is None
            and (
                not destination_link._scheduled_changes
                or destination_link.quiet_through(now, arrival)
            )
        ):
            self._schedule_fused(packet, destination, arrival)
            return
        self.simulator.schedule_at(arrival, self._arrive, packet, destination)

    def _schedule_fused(
        self, packet: Packet, destination: Host, arrival: float
    ) -> None:
        link = destination.link
        wire = packet.wire_bytes
        entry = link.push_pending_downlink(arrival, wire)
        # No-backlog delivery estimate (the reservation flush computes
        # the exact time; this is only a firing floor, and it is never
        # later than the true reservation).
        estimate = arrival + wire * 8.0 / link.downlink_bps
        self.fast_lane_fused += 1
        self.simulator.schedule_at(
            estimate, self._fast_deliver, packet, destination, entry,
            link.last_change_s,
        )

    def _fast_deliver(
        self, packet: Packet, destination: Host, entry: list,
        decided_change_s: float,
    ) -> None:
        link = destination.link
        now = self.simulator.now
        delivery = entry[3]
        if delivery < 0.0:
            link.flush_pending_downlink(now)
            delivery = entry[3]
        if link.last_change_s != decided_change_s and link.last_change_s <= entry[0]:
            # An unregistered mutation landed inside the flight window;
            # the slow path would have seen it.  Scripted scenarios
            # register every boundary, so this stays zero there.
            self.fast_lane_epoch_misses += 1
        if delivery > now:
            # The downlink was backlogged at arrival; re-arm at the
            # true reservation time (exactly where the slow path's
            # arrive event would have scheduled delivery).
            self.fast_lane_rearmed += 1
            self.simulator.schedule_at(delivery, destination.deliver, packet)
            return
        destination.deliver(packet)

    def _arrive(self, packet: Packet, destination: Host) -> None:
        now = self.simulator.now
        # Scripted ingress loss, checked at arrival so packets already
        # in flight when a phase flips are dropped by the new regime.
        if (
            destination.link.loss_rate > 0
            and self.rng.random() < destination.link.loss_rate
        ):
            self.packets_condition_lost += 1
            return
        release = now
        shaper = destination.link.ingress_shaper
        if shaper is not None:
            shaped = shaper.submit(now, packet.wire_bytes)
            if shaped is None:
                self.packets_shaper_dropped += 1
                return
            release = shaped
        delivery = destination.link.reserve_downlink(release, packet.wire_bytes)
        self.simulator.schedule_at(delivery, destination.deliver, packet)
