"""Packet records that traverse the simulated network.

A :class:`Packet` is the unit moved by the fabric.  It carries wire
sizes (for serialisation/queueing and traffic-rate accounting), an L7
payload length (the paper computes data rates "from Layer-7 payload
length in pcap traces", Fig. 15), and an opaque payload object used by
the media pipeline to move encoded chunk fragments end to end.

Packets are the hottest allocation in the simulator -- a multi-party
session constructs millions of them (every media fragment, probe and
SFU fan-out copy is one).  The class is therefore hand-rolled rather
than a dataclass: ``__slots__`` storage, a metadata dict that is only
allocated when someone actually touches it, the wire size computed once
at construction, and a validation-free :meth:`Packet.fast` constructor
for trusted hot loops (the packetiser validates sizes upstream).
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

from ..errors import ConfigurationError
from .address import Address

#: Standard Ethernet MTU payload budget used by the packetiser.
DEFAULT_MTU_BYTES = 1200

#: Approximate IP+UDP+SRTP framing overhead added to every packet.
HEADER_OVERHEAD_BYTES = 40


class Protocol(str, enum.Enum):
    """Transport protocol of a packet."""

    UDP = "udp"
    TCP = "tcp"


class PacketKind(str, enum.Enum):
    """What a packet carries; used by captures and service logic."""

    MEDIA_VIDEO = "media-video"
    MEDIA_AUDIO = "media-audio"
    PROBE = "probe"
    PROBE_REPLY = "probe-reply"
    SIGNALING = "signaling"
    FEEDBACK = "feedback"


_packet_ids = itertools.count(1)


def reserve_packet_ids(count: int) -> int:
    """Claim ``count`` consecutive packet ids and return the first.

    Burst commits account for whole trains without constructing
    :class:`Packet` objects; reserving the id block keeps the global
    counter exactly where the equivalent per-packet constructor calls
    would have left it, so ids stay bit-identical across code paths.
    """
    global _packet_ids
    start = next(_packet_ids)
    _packet_ids = itertools.count(start + count)
    return start

#: Hoisted enum singleton: ``Packet.fast`` runs per media fragment and
#: the class-attribute chain is measurable there.
_UDP = Protocol.UDP


class Packet:
    """One packet on the wire.

    Attributes:
        src: Source transport address.
        dst: Destination transport address.
        payload_bytes: Layer-7 payload length.
        proto: Transport protocol.
        kind: Semantic type of the packet.
        flow_id: Identifier correlating packets of one media stream.
        payload: Opaque payload delivered to the receiver (e.g. a
            :class:`~repro.media.video_codec.ChunkFragment`).
        packet_id: Unique id assigned at construction.
        sent_at: Simulation time when the sender handed the packet to
            its uplink; stamped by the host.
        seq: Per-flow sequence number stamped by media senders (kept
            out of :attr:`metadata` so the per-packet dict allocation
            disappears from the hot path).
        wire_bytes: Total on-the-wire size including header overhead;
            computed once at construction.
        metadata: Free-form annotations (feedback reports, probe ids,
            burst markers...).  Allocated lazily on first access --
            media packets never touch it.
    """

    __slots__ = (
        "src",
        "dst",
        "payload_bytes",
        "proto",
        "kind",
        "flow_id",
        "payload",
        "packet_id",
        "sent_at",
        "seq",
        "wire_bytes",
        "_metadata",
    )

    def __init__(
        self,
        src: Address,
        dst: Address,
        payload_bytes: int,
        proto: Protocol = Protocol.UDP,
        kind: PacketKind = PacketKind.MEDIA_VIDEO,
        flow_id: str = "",
        payload: Any = None,
        packet_id: Optional[int] = None,
        sent_at: Optional[float] = None,
        seq: Optional[int] = None,
        metadata: Optional[dict] = None,
    ) -> None:
        if payload_bytes < 0:
            raise ConfigurationError(
                f"payload_bytes must be >= 0, got {payload_bytes}"
            )
        self.src = src
        self.dst = dst
        self.payload_bytes = payload_bytes
        self.proto = proto
        self.kind = kind
        self.flow_id = flow_id
        self.payload = payload
        self.packet_id = packet_id if packet_id is not None else next(_packet_ids)
        self.sent_at = sent_at
        self.seq = seq
        self.wire_bytes = payload_bytes + HEADER_OVERHEAD_BYTES
        self._metadata = metadata

    @classmethod
    def fast(
        cls,
        src: Address,
        dst: Address,
        payload_bytes: int,
        kind: PacketKind,
        flow_id: str,
        payload: Any = None,
        seq: Optional[int] = None,
    ) -> "Packet":
        """Validation-free constructor for trusted hot loops.

        The packetiser guarantees ``payload_bytes >= 0`` upstream, so
        the per-packet range check, keyword machinery and metadata
        handling of :meth:`__init__` are skipped.  Everything else is
        identical to a default-constructed UDP packet.
        """
        packet = object.__new__(cls)
        packet.src = src
        packet.dst = dst
        packet.payload_bytes = payload_bytes
        packet.proto = _UDP
        packet.kind = kind
        packet.flow_id = flow_id
        packet.payload = payload
        packet.packet_id = next(_packet_ids)
        packet.sent_at = None
        packet.seq = seq
        packet.wire_bytes = payload_bytes + HEADER_OVERHEAD_BYTES
        packet._metadata = None
        return packet

    @property
    def metadata(self) -> dict:
        """Free-form annotations; the dict is created on first touch."""
        if self._metadata is None:
            self._metadata = {}
        return self._metadata

    @metadata.setter
    def metadata(self, value: Optional[dict]) -> None:
        self._metadata = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(id={self.packet_id}, {self.src}->{self.dst}, "
            f"{self.kind.value}, {self.payload_bytes}B, flow={self.flow_id!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return (
            self.src == other.src
            and self.dst == other.dst
            and self.payload_bytes == other.payload_bytes
            and self.proto is other.proto
            and self.kind is other.kind
            and self.flow_id == other.flow_id
            and self.payload == other.payload
            and self.packet_id == other.packet_id
            and self.sent_at == other.sent_at
            and self.seq == other.seq
            and (self._metadata or {}) == (other._metadata or {})
        )

    def reply_template(self, payload_bytes: int, kind: PacketKind) -> "Packet":
        """A new packet from ``dst`` back to ``src``.

        Used by probe responders and feedback loops; the reply gets a
        fresh packet id and cleared timestamps.
        """
        return Packet(
            src=self.dst,
            dst=self.src,
            payload_bytes=payload_bytes,
            proto=self.proto,
            kind=kind,
            flow_id=self.flow_id,
            metadata={"in_reply_to": self.packet_id},
        )

    def forwarded_to(self, src: Address, dst: Address) -> "Packet":
        """A relayed copy of this packet with new endpoints.

        Relay services (SFUs) use this to fan a sender's packet out to
        each receiver while preserving payload, flow, sequence and
        metadata.  Media packets carry no metadata dict, so SFU fan-out
        to N receivers allocates no dicts at all; when annotations are
        present the copy gets its own dict (mutations must not leak
        back into the original).
        """
        clone = object.__new__(Packet)
        clone.src = src
        clone.dst = dst
        clone.payload_bytes = self.payload_bytes
        clone.proto = self.proto
        clone.kind = self.kind
        clone.flow_id = self.flow_id
        clone.payload = self.payload
        clone.packet_id = next(_packet_ids)
        clone.sent_at = None
        clone.seq = self.seq
        clone.wire_bytes = self.wire_bytes
        clone._metadata = dict(self._metadata) if self._metadata else None
        return clone
