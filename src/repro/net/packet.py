"""Packet records that traverse the simulated network.

A :class:`Packet` is the unit moved by the fabric.  It carries wire
sizes (for serialisation/queueing and traffic-rate accounting), an L7
payload length (the paper computes data rates "from Layer-7 payload
length in pcap traces", Fig. 15), and an opaque payload object used by
the media pipeline to move encoded chunk fragments end to end.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from ..errors import ConfigurationError
from .address import Address

#: Standard Ethernet MTU payload budget used by the packetiser.
DEFAULT_MTU_BYTES = 1200

#: Approximate IP+UDP+SRTP framing overhead added to every packet.
HEADER_OVERHEAD_BYTES = 40


class Protocol(str, enum.Enum):
    """Transport protocol of a packet."""

    UDP = "udp"
    TCP = "tcp"


class PacketKind(str, enum.Enum):
    """What a packet carries; used by captures and service logic."""

    MEDIA_VIDEO = "media-video"
    MEDIA_AUDIO = "media-audio"
    PROBE = "probe"
    PROBE_REPLY = "probe-reply"
    SIGNALING = "signaling"
    FEEDBACK = "feedback"


_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One packet on the wire.

    Attributes:
        src: Source transport address.
        dst: Destination transport address.
        payload_bytes: Layer-7 payload length.
        proto: Transport protocol.
        kind: Semantic type of the packet.
        flow_id: Identifier correlating packets of one media stream.
        payload: Opaque payload delivered to the receiver (e.g. a
            :class:`~repro.media.video_codec.ChunkFragment`).
        packet_id: Unique id assigned at construction.
        sent_at: Simulation time when the sender handed the packet to
            its uplink; stamped by the host.
        metadata: Free-form annotations (frame ids, burst markers...).
    """

    src: Address
    dst: Address
    payload_bytes: int
    proto: Protocol = Protocol.UDP
    kind: PacketKind = PacketKind.MEDIA_VIDEO
    flow_id: str = ""
    payload: Any = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    sent_at: Optional[float] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ConfigurationError(
                f"payload_bytes must be >= 0, got {self.payload_bytes}"
            )

    @property
    def wire_bytes(self) -> int:
        """Total on-the-wire size including header overhead."""
        return self.payload_bytes + HEADER_OVERHEAD_BYTES

    def reply_template(self, payload_bytes: int, kind: PacketKind) -> "Packet":
        """A new packet from ``dst`` back to ``src``.

        Used by probe responders and feedback loops; the reply gets a
        fresh packet id and cleared timestamps.
        """
        return Packet(
            src=self.dst,
            dst=self.src,
            payload_bytes=payload_bytes,
            proto=self.proto,
            kind=kind,
            flow_id=self.flow_id,
            metadata={"in_reply_to": self.packet_id},
        )

    def forwarded_to(self, src: Address, dst: Address) -> "Packet":
        """A relayed copy of this packet with new endpoints.

        Relay services (SFUs) use this to fan a sender's packet out to
        each receiver while preserving payload, flow and metadata.
        """
        clone = replace(self, src=src, dst=dst)
        clone.packet_id = next(_packet_ids)
        clone.sent_at = None
        clone.metadata = dict(self.metadata)
        return clone
