"""Access links: per-host uplink/downlink with serialisation queues.

Every host attaches to the fabric through an :class:`AccessLink` that
models the capacity of its network attachment -- multi-Gbps for the
paper's Azure Fsv2 VMs, 50 Mbps symmetric for the Raspberry-Pi WiFi the
Android phones use, and anything in between for what-if experiments.

Serialisation is modelled with a per-direction virtual clock: a packet
departs at ``max(now, link_free) + wire_bits / rate`` and the link is
busy until then.  An optional ingress :class:`TokenBucketShaper`
reproduces the Section 4.4 bandwidth-cap setup.

Links are first-class *time-varying* simulation state: rates can change
mid-flight (:meth:`AccessLink.set_rates` rebases the serialisation
clocks so queued bits drain at the new rate), condition adders
(:attr:`extra_latency_s`, :attr:`extra_jitter_s`, :attr:`loss_rate`)
shift the wide-area path, and :meth:`AccessLink.apply_conditions` is
the single entry point a :class:`~repro.net.dynamics.ConditionTimeline`
drives to script all of it per phase.

Two pieces of machinery exist purely for the packet-path fast lane
(:mod:`repro.net.routing`):

* a **pending-arrival buffer** on the downlink.  The fast lane fuses
  the arrive+deliver events of a packet into one; the downlink
  reservation that the arrive event used to perform is instead queued
  here, keyed by arrival time, and flushed *in arrival order* whenever
  any reader or mutator touches the downlink virtual clock.  Because
  the flush arithmetic is time-independent (it uses each entry's
  arrival time, never the flush time), the reservations come out
  bit-identical to eager in-order calls to :meth:`reserve_downlink`.
* a **conditions epoch** (:attr:`conditions_epoch`,
  :attr:`last_change_s`) bumped by every effective mutation, plus a
  registry of *scheduled* future changes
  (:meth:`register_scheduled_changes`, filled by
  :func:`~repro.net.dynamics.arm_timeline`).  The fast lane only
  engages when :meth:`quiet_through` proves no scheduled change falls
  inside a packet's flight window, so any timeline phase flip forces
  in-flight packets onto the exact slow path; the epoch timestamp lets
  the fused event detect (and count) unregistered mid-flight mutations.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..units import gbps
from .shaper import ShaperStats, TokenBucketShaper

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .dynamics import LinkConditions


def default_cap_burst(rate_bps: Optional[float]) -> int:
    """The tc-style burst heuristic used by the Section 4.4 setup.

    Tight caps get a shallower bucket so bursts cannot blow through the
    limit (matching the paper's tbf parameters at 250 Kbps).
    """
    return 16_000 if rate_bps is None or rate_bps > 400_000 else 8_000


@dataclass
class AccessLink:
    """A host's attachment to the network.

    Attributes:
        uplink_bps: Transmit capacity in bits/second (current value;
            may be scripted mid-session by a condition timeline).
        downlink_bps: Receive capacity in bits/second.
        ingress_shaper: Optional token-bucket applied to incoming
            packets *before* downlink serialisation (tc/ifb position).
        extra_latency_s: Additional one-way delay on every packet this
            host sends or receives (a netem ``delay`` adder).
        extra_jitter_s: Scale of an additional random delay component
            (netem ``delay ... jitter``); 0 disables the draw entirely
            so static sessions consume no randomness.
        loss_rate: Probability that a packet crossing this access is
            dropped (netem ``loss``); 0 disables the draw.
        conditions_epoch: Monotone counter of effective condition
            mutations (rate change, cap change, adder change).
        last_change_s: Simulation time of the latest effective
            mutation (``-inf`` if never mutated).
    """

    uplink_bps: float = gbps(2)
    downlink_bps: float = gbps(2)
    ingress_shaper: Optional[TokenBucketShaper] = None
    extra_latency_s: float = 0.0
    extra_jitter_s: float = 0.0
    loss_rate: float = 0.0
    conditions_epoch: int = field(default=0, repr=False)
    last_change_s: float = field(default=float("-inf"), repr=False)
    _uplink_free: float = field(default=0.0, repr=False)
    _downlink_free: float = field(default=0.0, repr=False)
    _retired_shaper_phases: List[Tuple[str, ShaperStats]] = field(
        default_factory=list, repr=False
    )
    _pending_downlink: List[list] = field(default_factory=list, repr=False)
    _scheduled_changes: List[float] = field(default_factory=list, repr=False)
    _change_cursor: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.uplink_bps <= 0 or self.downlink_bps <= 0:
            raise ConfigurationError("link rates must be positive")
        self._validate_conditions()
        # The construction-time rates are the link's *base* conditions,
        # restored whenever a timeline phase does not override them.
        self.base_uplink_bps = self.uplink_bps
        self.base_downlink_bps = self.downlink_bps
        self._pending_seq = itertools.count()

    def _validate_conditions(self) -> None:
        if self.extra_latency_s < 0 or self.extra_jitter_s < 0:
            raise ConfigurationError("latency adders must be >= 0")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(f"loss rate out of range: {self.loss_rate}")

    def _mark_changed(self, now: float) -> None:
        self.conditions_epoch += 1
        self.last_change_s = now

    # The serialisation arithmetic below inlines
    # units.transmission_delay (``float(bytes) * 8 / float(rate)``):
    # these three methods run once or twice per packet and the function
    # call overhead is measurable at campaign scale.  The float
    # operations are identical, so results are bit-equal.

    def reserve_uplink(self, now: float, wire_bytes: int) -> float:
        """Queue a packet for transmission; returns its departure time."""
        free = self._uplink_free
        start = now if now > free else free
        departure = start + wire_bytes * 8.0 / self.uplink_bps
        self._uplink_free = departure
        return departure

    def reserve_downlink(self, now: float, wire_bytes: int) -> float:
        """Queue an arriving packet; returns its delivery time."""
        if self._pending_downlink:
            self.flush_pending_downlink(now)
        free = self._downlink_free
        start = now if now > free else free
        delivery = start + wire_bytes * 8.0 / self.downlink_bps
        self._downlink_free = delivery
        return delivery

    # ------------------------------------------------------------- #
    # Batch reservations (burst commits).
    # ------------------------------------------------------------- #
    #
    # Both helpers are all-or-nothing: they vectorise the reservation
    # only when the serialiser is idle at the first packet and no
    # packet's transmission overlaps the next packet's arrival, i.e.
    # when the scalar loop would have taken ``start = now`` on every
    # iteration.  Under that precondition the array expression
    # ``times + wire_bytes * 8.0 / rate`` is operation-for-operation
    # the scalar arithmetic, so results are bit-identical.  Any
    # backlog, overlap or pending deferred reservation returns ``None``
    # and the caller must run the exact per-packet path.

    def reserve_uplink_batch(
        self, times: "np.ndarray", wire_bytes: "np.ndarray"
    ) -> "Optional[np.ndarray]":
        """Reserve a whole train on the uplink, or ``None`` to refuse."""
        if self._uplink_free > times[0]:
            return None
        departures = times + wire_bytes * 8.0 / self.uplink_bps
        if len(times) > 1 and bool(np.any(departures[:-1] > times[1:])):
            return None
        self._uplink_free = float(departures[-1])
        return departures

    def reserve_downlink_batch(
        self, arrivals: "np.ndarray", wire_bytes: "np.ndarray"
    ) -> "Optional[np.ndarray]":
        """Reserve a whole train on the downlink, or ``None`` to refuse."""
        if self._pending_downlink or self._downlink_free > arrivals[0]:
            return None
        deliveries = arrivals + wire_bytes * 8.0 / self.downlink_bps
        if len(arrivals) > 1 and bool(np.any(deliveries[:-1] > arrivals[1:])):
            return None
        self._downlink_free = float(deliveries[-1])
        return deliveries

    # ------------------------------------------------------------- #
    # Fast-lane pending arrivals (deferred downlink reservations).
    # ------------------------------------------------------------- #

    def push_pending_downlink(self, arrival_s: float, wire_bytes: int) -> list:
        """Queue a deferred downlink reservation for a fused delivery.

        Returns the mutable entry ``[arrival, seq, wire, delivery]``;
        ``delivery`` starts at ``-1.0`` and is filled in by
        :meth:`flush_pending_downlink` when the reservation is applied
        (in global arrival order, with arithmetic identical to
        :meth:`reserve_downlink`).
        """
        entry = [arrival_s, next(self._pending_seq), wire_bytes, -1.0]
        heapq.heappush(self._pending_downlink, entry)
        return entry

    def flush_pending_downlink(self, now: float) -> None:
        """Apply every deferred reservation with arrival <= ``now``.

        Entries are processed in (arrival, push) order, so mixing
        deferred fast-lane reservations with eager slow-path calls
        yields the same virtual-clock sequence as an all-eager run.
        The arithmetic uses each entry's *arrival* time -- never the
        flush time -- so when the flush happens is irrelevant, as long
        as it happens before any other reader or mutator of the clock
        (which :meth:`reserve_downlink`, :meth:`set_rates` and
        :meth:`downlink_backlog` guarantee).
        """
        pending = self._pending_downlink
        free = self._downlink_free
        rate = self.downlink_bps
        pop = heapq.heappop
        while pending and pending[0][0] <= now:
            entry = pop(pending)
            start = entry[0] if entry[0] > free else free
            free = start + entry[2] * 8.0 / rate
            entry[3] = free
        self._downlink_free = free

    # ------------------------------------------------------------- #
    # Scheduled-change registry (fast-lane eligibility).
    # ------------------------------------------------------------- #

    def register_scheduled_changes(self, times_s: "List[float]") -> None:
        """Announce future mutation times (timeline phase boundaries).

        The fast lane refuses to fuse a packet whose flight window
        overlaps any registered time, which is what keeps dynamics
        sessions bit-identical: every packet in flight across a phase
        flip travels the exact slow path.
        """
        remaining = self._scheduled_changes[self._change_cursor:]
        self._scheduled_changes = sorted(remaining + list(times_s))
        self._change_cursor = 0

    def quiet_through(self, now: float, horizon_s: float) -> bool:
        """No registered condition change in ``(now, horizon_s]``."""
        changes = self._scheduled_changes
        i = self._change_cursor
        n = len(changes)
        while i < n and changes[i] <= now:
            i += 1
        self._change_cursor = i
        return i >= n or changes[i] > horizon_s

    # ------------------------------------------------------------- #
    # Mid-flight rate changes.
    # ------------------------------------------------------------- #

    def set_rates(
        self,
        now: float,
        uplink_bps: Optional[float] = None,
        downlink_bps: Optional[float] = None,
    ) -> None:
        """Change link rates mid-flight, rebasing the virtual clocks.

        ``None`` keeps a direction unchanged.  The seconds of backlog
        already committed to each direction are converted to bits at
        the old rate and re-queued at the new one, so a rate *drop*
        stretches the pending queue and a rate *raise* drains it faster
        -- exactly what re-programming a serialising interface does.
        """
        if uplink_bps is not None and uplink_bps != self.uplink_bps:
            if uplink_bps <= 0:
                raise ConfigurationError("link rates must be positive")
            backlog_bits = max(0.0, self._uplink_free - now) * self.uplink_bps
            self.uplink_bps = uplink_bps
            self._uplink_free = now + backlog_bits / uplink_bps
            self._mark_changed(now)
        if downlink_bps is not None and downlink_bps != self.downlink_bps:
            if downlink_bps <= 0:
                raise ConfigurationError("link rates must be positive")
            # Deferred reservations were admitted under the old rate
            # and arrived before this change (the fast lane never fuses
            # across a scheduled boundary), so settle them first.
            if self._pending_downlink:
                self.flush_pending_downlink(now)
            backlog_bits = max(0.0, self._downlink_free - now) * self.downlink_bps
            self.downlink_bps = downlink_bps
            self._downlink_free = now + backlog_bits / downlink_bps
            self._mark_changed(now)

    # ------------------------------------------------------------- #
    # Ingress shaping.
    # ------------------------------------------------------------- #

    def set_ingress_cap(
        self,
        rate_bps: Optional[float],
        burst_bytes: int = 16_000,
        max_queue_delay_s: float = 0.2,
        now: float = 0.0,
    ) -> None:
        """Install (or with ``None``, remove) an ingress bandwidth cap.

        This is the experiment hook for Section 4.4: ``None`` restores
        the "Infinite" column of Figures 17-18.  Replacing or removing
        a shaper retires its counters into the link's shaper history
        (:meth:`shaper_stats_total`), so drop counts survive cap
        changes instead of vanishing with the old shaper object.
        """
        if rate_bps is None and self.ingress_shaper is None:
            return
        self._retire_shaper()
        self._mark_changed(now)
        if rate_bps is None:
            self.ingress_shaper = None
            return
        self.ingress_shaper = TokenBucketShaper(
            rate_bps=rate_bps,
            burst_bytes=burst_bytes,
            max_queue_delay_s=max_queue_delay_s,
        )

    def _retire_shaper(self) -> None:
        if self.ingress_shaper is not None:
            self._retired_shaper_phases.extend(
                self.ingress_shaper.stats_by_phase().items()
            )
            self.ingress_shaper = None

    def shaper_phase_stats(self) -> "dict[str, ShaperStats]":
        """Shaper counters by phase, across every shaper ever installed."""
        phases: "dict[str, ShaperStats]" = {}
        current = (
            self.ingress_shaper.stats_by_phase().items()
            if self.ingress_shaper is not None
            else []
        )
        for name, stats in list(self._retired_shaper_phases) + list(current):
            phases.setdefault(name, ShaperStats()).absorb(stats)
        return phases

    def shaper_stats_total(self) -> ShaperStats:
        """Counters summed over retired and live shapers."""
        return ShaperStats.merged(list(self.shaper_phase_stats().values()))

    # ------------------------------------------------------------- #
    # Scripted conditions (driven by a ConditionTimeline).
    # ------------------------------------------------------------- #

    def apply_conditions(
        self,
        now: float,
        conditions: "LinkConditions",
        phase: Optional[str] = None,
    ) -> None:
        """Switch the link to one phase's conditions, mid-flight safe.

        Rates fall back to the construction-time base when a condition
        leaves them unset; the ingress cap is re-rated in place (queue
        preserved, counters rolled to the new phase) when a shaper is
        already installed, installed fresh when absent, and retired
        when the phase is uncapped.
        """
        self.set_rates(
            now,
            conditions.uplink_bps
            if conditions.uplink_bps is not None
            else self.base_uplink_bps,
            conditions.downlink_bps
            if conditions.downlink_bps is not None
            else self.base_downlink_bps,
        )
        if (
            self.extra_latency_s != conditions.extra_latency_s
            or self.extra_jitter_s != conditions.extra_jitter_s
            or self.loss_rate != conditions.loss_rate
        ):
            self._mark_changed(now)
        self.extra_latency_s = conditions.extra_latency_s
        self.extra_jitter_s = conditions.extra_jitter_s
        self.loss_rate = conditions.loss_rate
        self._validate_conditions()
        cap = conditions.ingress_cap_bps
        if cap is None:
            if self.ingress_shaper is not None:
                self.set_ingress_cap(None, now=now)
            return
        burst = conditions.burst_bytes()
        if self.ingress_shaper is None:
            self.set_ingress_cap(cap, burst_bytes=burst, now=now)
            if phase is not None:
                self.ingress_shaper.phase_name = phase
        else:
            self.ingress_shaper.set_rate(now, cap, burst_bytes=burst)
            self._mark_changed(now)
            if phase is not None:
                self.ingress_shaper.start_phase(phase)

    def clear_conditions(self, now: float) -> None:
        """Restore base rates and remove every scripted condition."""
        self.set_rates(now, self.base_uplink_bps, self.base_downlink_bps)
        if self.extra_latency_s or self.extra_jitter_s or self.loss_rate:
            self._mark_changed(now)
        self.extra_latency_s = 0.0
        self.extra_jitter_s = 0.0
        self.loss_rate = 0.0
        if self.ingress_shaper is not None:
            self.set_ingress_cap(None, now=now)

    # ------------------------------------------------------------- #
    # Introspection.
    # ------------------------------------------------------------- #

    def uplink_backlog(self, now: float) -> float:
        """Seconds of queued transmission ahead of a new packet."""
        return max(0.0, self._uplink_free - now)

    def downlink_backlog(self, now: float) -> float:
        """Seconds of queued delivery ahead of a new arrival."""
        if self._pending_downlink:
            self.flush_pending_downlink(now)
        return max(0.0, self._downlink_free - now)
