"""Access links: per-host uplink/downlink with serialisation queues.

Every host attaches to the fabric through an :class:`AccessLink` that
models the capacity of its network attachment -- multi-Gbps for the
paper's Azure Fsv2 VMs, 50 Mbps symmetric for the Raspberry-Pi WiFi the
Android phones use, and anything in between for what-if experiments.

Serialisation is modelled with a per-direction virtual clock: a packet
departs at ``max(now, link_free) + wire_bits / rate`` and the link is
busy until then.  An optional ingress :class:`TokenBucketShaper`
reproduces the Section 4.4 bandwidth-cap setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigurationError
from ..units import gbps, transmission_delay
from .shaper import TokenBucketShaper


@dataclass
class AccessLink:
    """A host's attachment to the network.

    Attributes:
        uplink_bps: Transmit capacity in bits/second.
        downlink_bps: Receive capacity in bits/second.
        ingress_shaper: Optional token-bucket applied to incoming
            packets *before* downlink serialisation (tc/ifb position).
    """

    uplink_bps: float = gbps(2)
    downlink_bps: float = gbps(2)
    ingress_shaper: Optional[TokenBucketShaper] = None
    _uplink_free: float = field(default=0.0, repr=False)
    _downlink_free: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.uplink_bps <= 0 or self.downlink_bps <= 0:
            raise ConfigurationError("link rates must be positive")

    def reserve_uplink(self, now: float, wire_bytes: int) -> float:
        """Queue a packet for transmission; returns its departure time."""
        start = max(now, self._uplink_free)
        departure = start + transmission_delay(wire_bytes, self.uplink_bps)
        self._uplink_free = departure
        return departure

    def reserve_downlink(self, now: float, wire_bytes: int) -> float:
        """Queue an arriving packet; returns its delivery time."""
        start = max(now, self._downlink_free)
        delivery = start + transmission_delay(wire_bytes, self.downlink_bps)
        self._downlink_free = delivery
        return delivery

    def set_ingress_cap(
        self,
        rate_bps: Optional[float],
        burst_bytes: int = 16_000,
        max_queue_delay_s: float = 0.2,
    ) -> None:
        """Install (or with ``None``, remove) an ingress bandwidth cap.

        This is the experiment hook for Section 4.4: ``None`` restores
        the "Infinite" column of Figures 17-18.
        """
        if rate_bps is None:
            self.ingress_shaper = None
            return
        self.ingress_shaper = TokenBucketShaper(
            rate_bps=rate_bps,
            burst_bytes=burst_bytes,
            max_queue_delay_s=max_queue_delay_s,
        )

    def uplink_backlog(self, now: float) -> float:
        """Seconds of queued transmission ahead of a new packet."""
        return max(0.0, self._uplink_free - now)

    def downlink_backlog(self, now: float) -> float:
        """Seconds of queued delivery ahead of a new arrival."""
        return max(0.0, self._downlink_free - now)
