"""Geographic model: points on the globe and a distance-based latency model.

The paper's lag and RTT findings are driven almost entirely by the
geographic separation between clients and the platforms' relay
infrastructure (Findings 1 and 2).  This module supplies the physics:
great-circle distances between named locations, and a latency model that
converts distance into one-way network delay using fibre propagation
speed, a route-inflation factor (real Internet paths are not geodesics),
and a small per-path processing overhead.

The defaults are calibrated so that well-known paths land near their
published RTTs (US-east <-> US-west about 60 ms, trans-Atlantic about
80-90 ms), which is what the paper's Figures 8-11 depend on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import FIBER_LIGHT_SPEED_M_PER_S, ms

#: Mean Earth radius in kilometres.
EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class GeoPoint:
    """A named point on the globe.

    Attributes:
        name: Human-readable label, e.g. ``"US-East"``.
        lat: Latitude in degrees (positive north).
        lon: Longitude in degrees (positive east).
    """

    name: str
    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ConfigurationError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ConfigurationError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return great_circle_km(self.lat, self.lon, other.lat, other.lon)


def great_circle_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two lat/lon points (haversine).

    >>> round(great_circle_km(0, 0, 0, 0), 6)
    0.0
    """
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


@dataclass(frozen=True)
class LatencyModel:
    """Distance -> one-way delay model.

    One-way delay between two points is computed as::

        distance_km * inflation(distance) / fibre_speed + overhead

    Route inflation (the ratio of cable path to geodesic) is *distance
    dependent* on the real Internet: short continental paths detour
    through exchange points (inflation 1.5-1.8) while long submarine
    routes run nearly great-circle (1.2-1.3).  We model it as
    ``base + extra * exp(-distance / scale)``, which reproduces both
    the ~60 ms US coast-to-coast RTT and the ~75-80 ms trans-Atlantic
    RTT that Figures 8-11 hinge on.

    Attributes:
        inflation_base: Asymptotic inflation of very long paths.
        inflation_extra: Additional inflation at zero distance.
        inflation_scale_km: Decay scale of the extra inflation.
        processing_overhead_s: Fixed per-direction overhead for
            serialisation, switching and last-mile hops.
        jitter_fraction: Scale of random per-packet jitter relative to
            the propagation delay; consumed by the fabric, not here.
        min_delay_s: Floor for delay between co-located hosts (two VMs
            in the same region are still ~0.5 ms apart).
    """

    inflation_base: float = 1.2
    inflation_extra: float = 0.5
    inflation_scale_km: float = 3500.0
    processing_overhead_s: float = ms(1.2)
    jitter_fraction: float = 0.04
    min_delay_s: float = ms(0.5)

    def __post_init__(self) -> None:
        if self.inflation_base < 1.0:
            raise ConfigurationError(
                f"base inflation must be >= 1.0, got {self.inflation_base}"
            )
        if self.inflation_extra < 0 or self.inflation_scale_km <= 0:
            raise ConfigurationError("inflation shape parameters invalid")
        if self.processing_overhead_s < 0 or self.min_delay_s < 0:
            raise ConfigurationError("delays must be non-negative")

    def route_inflation(self, distance_km: float) -> float:
        """Path inflation factor at a given geodesic distance."""
        return self.inflation_base + self.inflation_extra * math.exp(
            -distance_km / self.inflation_scale_km
        )

    def one_way_delay_s(self, a: GeoPoint, b: GeoPoint) -> float:
        """Deterministic one-way propagation delay between two points."""
        distance_km = a.distance_km(b)
        inflation = self.route_inflation(distance_km)
        propagation = (
            distance_km * 1000.0 * inflation / FIBER_LIGHT_SPEED_M_PER_S
        )
        return max(self.min_delay_s, propagation + self.processing_overhead_s)

    def rtt_s(self, a: GeoPoint, b: GeoPoint) -> float:
        """Deterministic round-trip time between two points."""
        return 2.0 * self.one_way_delay_s(a, b)

    def jitter_scale_s(self, a: GeoPoint, b: GeoPoint) -> float:
        """Standard scale of per-packet jitter on the a->b path."""
        return self.jitter_fraction * self.one_way_delay_s(a, b)
