"""Hosts: the machines of the testbed.

A :class:`Host` is anything with a network presence -- an emulated
cloud VM, an Android phone behind the Raspberry-Pi WiFi, or a platform
relay server.  Hosts bind handlers to ports (sockets), send packets
into the fabric, deliver arriving packets, run tcpdump-style captures
and keep a local clock used to timestamp those captures.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from ..errors import ConfigurationError, SimulationError
from .address import Address, EphemeralPortAllocator
from .capture import Capture, Direction
from .clock import Clock, PERFECT_CLOCK
from .geo import GeoPoint
from .link import AccessLink
from .packet import Packet, Protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .burst import PacketTrain
    from .routing import Network

_UDP = Protocol.UDP

#: Signature of a bound port handler.
PacketHandler = Callable[[Packet, "Host"], None]


class Host:
    """One machine attached to the simulated network.

    Hosts are created through :meth:`repro.net.routing.Network.add_host`
    so they arrive wired to the fabric, with an allocated IP and an
    access link.

    Attributes:
        name: Human-readable host name (e.g. ``"US-East"``).
        ip: The host's allocated address.
        location: Geographic position, drives path latency.
        link: The host's :class:`~repro.net.link.AccessLink`.
        clock: Local clock used for capture timestamps.
    """

    def __init__(
        self,
        name: str,
        ip: str,
        location: GeoPoint,
        network: "Network",
        link: Optional[AccessLink] = None,
        clock: Clock = PERFECT_CLOCK,
    ) -> None:
        self.name = name
        self.ip = ip
        self.location = location
        self.link = link if link is not None else AccessLink()
        self.clock = clock
        self._network = network
        self._handlers: Dict[int, PacketHandler] = {}
        self._captures: List[Capture] = []
        self._ephemeral = EphemeralPortAllocator()
        #: Per-destination fast-lane plans, owned by the network's
        #: packet path (:meth:`repro.net.routing.Network._fast_plan`).
        #: Keyed by destination ip so the per-packet lookup needs no
        #: tuple allocation.
        self.fast_plans: Dict[str, list] = {}
        self.packets_sent = 0
        self.packets_received = 0
        self.packets_unhandled = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name!r}, ip={self.ip!r})"

    # ----------------------------------------------------------------- #
    # Time.
    # ----------------------------------------------------------------- #

    @property
    def network(self) -> "Network":
        """The fabric this host is attached to."""
        return self._network

    def local_time(self) -> float:
        """Current time according to this host's (imperfect) clock."""
        return self.clock.local_time(self._network.simulator.now)

    # ----------------------------------------------------------------- #
    # Sockets.
    # ----------------------------------------------------------------- #

    def address(self, port: int) -> Address:
        """This host's address at a given port."""
        return Address(self.ip, port)

    def bind(self, port: int, handler: PacketHandler) -> Address:
        """Attach a handler to a port; returns the bound address.

        Raises :class:`~repro.errors.ConfigurationError` if the port is
        already bound -- double binds are always a harness bug.
        """
        if port in self._handlers:
            raise ConfigurationError(f"{self.name}: port {port} already bound")
        self._handlers[port] = handler
        return self.address(port)

    def bind_ephemeral(self, handler: PacketHandler) -> Address:
        """Bind a handler to a fresh ephemeral port."""
        return self.bind(self._ephemeral.allocate(), handler)

    def unbind(self, port: int) -> None:
        """Release a bound port (no-op if not bound)."""
        self._handlers.pop(port, None)

    def is_bound(self, port: int) -> bool:
        """Whether a handler is attached to ``port``."""
        return port in self._handlers

    # ----------------------------------------------------------------- #
    # Packet I/O.
    # ----------------------------------------------------------------- #

    def send(self, packet: Packet) -> None:
        """Transmit a packet into the fabric.

        The packet's source must belong to this host; sending someone
        else's packets is a wiring error we want to fail loudly.
        """
        if packet.src.ip != self.ip:
            raise SimulationError(
                f"{self.name} cannot send packet with src {packet.src.ip}"
            )
        network = self._network
        now = network.simulator.now
        packet.sent_at = now
        self.packets_sent += 1
        if self._captures:
            local = self.clock.local_time(now)
            for capture in self._captures:
                capture.record(packet, Direction.OUT, local)
        network.transmit(packet)

    def send_train(self, train: "PacketTrain") -> int:
        """Offer a packet train for an all-or-nothing burst commit.

        Returns the number of packets committed, or 0 when the network
        refused the train -- nothing was sent and the caller must fall
        back to per-packet :meth:`send` calls (the exact path).
        """
        if train.src.ip != self.ip:
            raise SimulationError(
                f"{self.name} cannot send train with src {train.src.ip}"
            )
        return self._network.transmit_train(self, train)

    def _commit_train_sent(
        self, train: "PacketTrain", wire_bytes: list, packet_id_start: int
    ) -> None:
        """Sender-side accounting for a burst-committed train."""
        self.packets_sent += len(wire_bytes)
        if self._captures:
            local = self.clock.local_times(train.times)
            for capture in self._captures:
                capture.record_block(
                    Direction.OUT, train.src, train.dst, _UDP, train.kind,
                    local, wire_bytes, train.payload_sizes, train.flow_id,
                    packet_id_start,
                )

    def _deliver_train(
        self,
        train: "PacketTrain",
        deliveries,
        wire_bytes: list,
        packet_id_start: int,
        handler,
    ) -> None:
        """Receiver-side accounting + handoff for a burst commit."""
        self.packets_received += len(wire_bytes)
        if self._captures:
            local = self.clock.local_times(deliveries)
            for capture in self._captures:
                capture.record_block(
                    Direction.IN, train.src, train.dst, _UDP, train.kind,
                    local, wire_bytes, train.payload_sizes, train.flow_id,
                    packet_id_start,
                )
        handler.on_train(train, deliveries, self)

    def deliver(self, packet: Packet) -> None:
        """Called by the fabric when a packet arrives for this host."""
        self.packets_received += 1
        if self._captures:
            local = self.clock.local_time(self._network.simulator.now)
            for capture in self._captures:
                capture.record(packet, Direction.IN, local)
        handler = self._handlers.get(packet.dst.port)
        if handler is None:
            self.packets_unhandled += 1
            return
        handler(packet, self)

    # ----------------------------------------------------------------- #
    # Capture.
    # ----------------------------------------------------------------- #

    def start_capture(self) -> Capture:
        """Start a tcpdump-style capture on this host."""
        capture = Capture(self.name)
        self._captures.append(capture)
        return capture

    def stop_captures(self) -> None:
        """Stop every running capture on this host."""
        for capture in self._captures:
            capture.stop()

