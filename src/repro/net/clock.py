"""Per-host clocks with bounded synchronisation error.

The paper's lag measurement correlates packet timestamps recorded on
*different* machines, which "requires accurate clock synchronization
among deployed clients"; it relies on the clouds' stratum-1 time-sync
services (Section 3.1).  We model each host clock as the true simulation
time plus a small constant offset and a tiny frequency drift, drawn from
distributions representative of cloud PTP/NTP sync (sub-millisecond).

Captures timestamp packets with :meth:`Clock.local_time`, so measured
lags inherit realistic clock error exactly as in the real testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import us


@dataclass(frozen=True)
class Clock:
    """A host clock: ``local = true + offset + drift_ppm * true``.

    Attributes:
        offset_s: Constant offset from true time, seconds.
        drift_ppm: Frequency error in parts-per-million.
    """

    offset_s: float = 0.0
    drift_ppm: float = 0.0

    def local_time(self, true_time: float) -> float:
        """Map true simulation time to this host's local timestamp."""
        return true_time + self.offset_s + self.drift_ppm * 1e-6 * true_time

    def local_times(self, true_times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`local_time` over an array of true times.

        The expression mirrors the scalar form operation for operation
        (same left-to-right IEEE evaluation), so each element is
        bit-identical to a scalar ``local_time`` call -- burst captures
        depend on that.
        """
        return true_times + self.offset_s + self.drift_ppm * 1e-6 * true_times

    def error_at(self, true_time: float) -> float:
        """Absolute clock error at a given true time."""
        return self.local_time(true_time) - true_time


class SyncedClockFactory:
    """Draws clocks typical of cloud time-sync services.

    Offsets are Gaussian with a standard deviation defaulting to 100 us
    (Azure/AWS time sync keeps VMs well under 1 ms from true time), and
    drifts are a few ppm.  A dedicated factory keeps the randomness
    seedable per experiment.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        offset_std_s: float = us(100),
        drift_std_ppm: float = 2.0,
    ) -> None:
        if offset_std_s < 0 or drift_std_ppm < 0:
            raise ConfigurationError("clock error scales must be non-negative")
        self._rng = rng
        self._offset_std_s = offset_std_s
        self._drift_std_ppm = drift_std_ppm

    def make_clock(self) -> Clock:
        """Draw a fresh clock for one host."""
        offset = float(self._rng.normal(0.0, self._offset_std_s))
        drift = float(self._rng.normal(0.0, self._drift_std_ppm))
        return Clock(offset_s=offset, drift_ppm=drift)


#: A perfectly synchronised clock, useful in unit tests.
PERFECT_CLOCK = Clock(offset_s=0.0, drift_ppm=0.0)
