"""Packet capture: the simulator's ``tcpdump``.

The paper's client monitor "captures incoming/outgoing videoconferencing
traffic with tcpdump, and dumps the trace to a file for offline
analysis" (Section 3.2).  A :class:`Capture` attached to a host records
every packet the host sends or receives, timestamped with the host's
*local* clock (so cross-host correlation inherits realistic clock
error), and offers the query helpers the paper's analyses need:
endpoint discovery, Layer-7 data rates, and time/size series for the
lag detector of Figure 2.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Set, Tuple

from ..errors import CaptureError
from ..units import rate_from_bytes
from .address import EndpointKey
from .packet import Packet, PacketKind, Protocol


class Direction(str, enum.Enum):
    """Whether the host sent or received the packet."""

    IN = "in"
    OUT = "out"


@dataclass(frozen=True)
class CapturedPacket:
    """One record in a capture file.

    Attributes:
        timestamp: Host-local capture time (includes clock error).
        direction: :data:`Direction.IN` or :data:`Direction.OUT`.
        src_ip/src_port/dst_ip/dst_port: Transport 4-tuple.
        proto: Transport protocol.
        kind: Semantic packet type (media, probe...).
        wire_bytes: On-the-wire packet size.
        payload_bytes: Layer-7 payload length (rate analyses use this).
        flow_id: Media stream correlation id.
        packet_id: Simulator-unique packet id.
    """

    timestamp: float
    direction: Direction
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    proto: Protocol
    kind: PacketKind
    wire_bytes: int
    payload_bytes: int
    flow_id: str
    packet_id: int

    @property
    def remote_endpoint(self) -> EndpointKey:
        """The non-local side of the packet as an endpoint key."""
        if self.direction is Direction.OUT:
            return EndpointKey(self.dst_ip, self.dst_port, self.proto.value)
        return EndpointKey(self.src_ip, self.src_port, self.proto.value)


class Capture:
    """An in-memory pcap: append-only while running, queryable after.

    Captures are created via :meth:`repro.net.node.Host.start_capture`
    and can be stopped to freeze their contents; querying a running
    capture is allowed (the monitor's on-the-fly "active probing"
    pipeline does exactly that).
    """

    def __init__(self, host_name: str) -> None:
        self.host_name = host_name
        self._records: List[CapturedPacket] = []
        self._running = True
        self._timestamps: Optional[List[float]] = None

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def running(self) -> bool:
        """Whether the capture is still recording."""
        return self._running

    def stop(self) -> None:
        """Stop recording; subsequent packets are ignored."""
        self._running = False

    def record(self, packet: Packet, direction: Direction, local_time: float) -> None:
        """Append one packet record (called by the owning host)."""
        if not self._running:
            return
        self._timestamps = None
        self._records.append(
            CapturedPacket(
                timestamp=local_time,
                direction=direction,
                src_ip=packet.src.ip,
                src_port=packet.src.port,
                dst_ip=packet.dst.ip,
                dst_port=packet.dst.port,
                proto=packet.proto,
                kind=packet.kind,
                wire_bytes=packet.wire_bytes,
                payload_bytes=packet.payload_bytes,
                flow_id=packet.flow_id,
                packet_id=packet.packet_id,
            )
        )

    # ----------------------------------------------------------------- #
    # Query helpers (the "offline analysis" toolbox).
    # ----------------------------------------------------------------- #

    def filter(
        self,
        direction: Optional[Direction] = None,
        kind: Optional[PacketKind] = None,
        kinds: Optional[Iterable[PacketKind]] = None,
        remote_port: Optional[int] = None,
        flow_id: Optional[str] = None,
        predicate: Optional[Callable[[CapturedPacket], bool]] = None,
    ) -> List[CapturedPacket]:
        """Select records matching all given criteria (BPF, kindly)."""
        if kind is not None and kinds is not None:
            raise CaptureError("pass either kind or kinds, not both")
        kind_set = {kind} if kind is not None else set(kinds) if kinds else None
        result = []
        for record in self._records:
            if direction is not None and record.direction is not direction:
                continue
            if kind_set is not None and record.kind not in kind_set:
                continue
            if remote_port is not None and record.remote_endpoint.port != remote_port:
                continue
            if flow_id is not None and record.flow_id != flow_id:
                continue
            if predicate is not None and not predicate(record):
                continue
            result.append(record)
        return result

    def time_size_series(
        self,
        direction: Direction,
        kind: Optional[PacketKind] = None,
    ) -> List[Tuple[float, int]]:
        """(timestamp, payload_bytes) pairs, the raw data of Figure 2."""
        return [
            (r.timestamp, r.payload_bytes)
            for r in self.filter(direction=direction, kind=kind)
        ]

    def total_payload_bytes(
        self, direction: Direction, kind: Optional[PacketKind] = None
    ) -> int:
        """Sum of L7 payload bytes in one direction."""
        return sum(r.payload_bytes for r in self.filter(direction=direction, kind=kind))

    def payload_bytes_between(
        self,
        direction: Direction,
        start: float,
        end: float,
        kinds: Optional[Iterable[PacketKind]] = None,
    ) -> int:
        """L7 payload bytes in ``[start, end)`` -- one timeline phase.

        The right-open window matches phase segmentation: a packet on
        a phase boundary belongs to the phase it *enters*, so summing
        over consecutive windows never double-counts.  Records are
        appended in timestamp order (event order through a monotonic
        affine clock), so the window is located by bisection over a
        cached timestamp index -- many-phase timelines (trace replay)
        stay cheap even over large captures.
        """
        if self._timestamps is None:
            self._timestamps = [r.timestamp for r in self._records]
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_left(self._timestamps, end, lo)
        kind_set = set(kinds) if kinds is not None else None
        return sum(
            r.payload_bytes
            for r in self._records[lo:hi]
            if r.direction is direction
            and (kind_set is None or r.kind in kind_set)
        )

    def payload_rate_bps(
        self,
        direction: Direction,
        start: Optional[float] = None,
        end: Optional[float] = None,
        kind: Optional[PacketKind] = None,
    ) -> float:
        """Average Layer-7 data rate over a time window.

        This is the paper's Fig. 15 metric ("computed from Layer-7
        payload length in pcap traces").  The window defaults to the
        first/last matching packet timestamps.

        Raises :class:`~repro.errors.CaptureError` if no packets match.
        """
        records = self.filter(direction=direction, kind=kind)
        if start is not None or end is not None:
            lo = start if start is not None else float("-inf")
            hi = end if end is not None else float("inf")
            records = [r for r in records if lo <= r.timestamp <= hi]
        if not records:
            raise CaptureError("no packets in window; cannot compute a rate")
        if start is None:
            start = records[0].timestamp
        if end is None:
            end = records[-1].timestamp
        duration = end - start
        if duration <= 0:
            raise CaptureError("rate window must have positive duration")
        total = sum(r.payload_bytes for r in records)
        return rate_from_bytes(total, duration)

    def remote_endpoints(
        self,
        direction: Optional[Direction] = None,
        port: Optional[int] = None,
        media_only: bool = True,
    ) -> Set[EndpointKey]:
        """Distinct remote endpoints seen in the trace.

        This is the monitor's endpoint-discovery step: the paper counts
        how many distinct streaming endpoints a client encounters over
        sessions (Section 4.2's 20 / 19.5 / 1.8 finding).
        """
        media_kinds = {PacketKind.MEDIA_VIDEO, PacketKind.MEDIA_AUDIO}
        found: Set[EndpointKey] = set()
        for record in self._records:
            if direction is not None and record.direction is not direction:
                continue
            if media_only and record.kind not in media_kinds:
                continue
            endpoint = record.remote_endpoint
            if port is not None and endpoint.port != port:
                continue
            found.add(endpoint)
        return found

    def span(self) -> Tuple[float, float]:
        """(first, last) record timestamps.

        Raises :class:`~repro.errors.CaptureError` on an empty capture.
        """
        if not self._records:
            raise CaptureError("capture is empty")
        return self._records[0].timestamp, self._records[-1].timestamp
