"""Packet capture: the simulator's ``tcpdump``.

The paper's client monitor "captures incoming/outgoing videoconferencing
traffic with tcpdump, and dumps the trace to a file for offline
analysis" (Section 3.2).  A :class:`Capture` attached to a host records
every packet the host sends or receives, timestamped with the host's
*local* clock (so cross-host correlation inherits realistic clock
error), and offers the query helpers the paper's analyses need:
endpoint discovery, Layer-7 data rates, and time/size series for the
lag detector of Figure 2.

Recording sits on the per-packet hot path (every send and every
delivery records, often into two captures), so the store is columnar
rather than an object per packet: ``record`` appends one flat tuple to
the row store -- no :class:`CapturedPacket` is allocated while the
simulation runs -- and the numeric columns (timestamps, sizes,
direction and kind codes) are extracted into cached numpy arrays the
first time a query needs them.  :class:`CapturedPacket` views are
materialised lazily, only for the records a query actually returns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..errors import CaptureError
from ..units import rate_from_bytes
from .address import EndpointKey
from .packet import Packet, PacketKind, Protocol


class Direction(str, enum.Enum):
    """Whether the host sent or received the packet."""

    IN = "in"
    OUT = "out"


#: Row-tuple field offsets (the storage schema of :class:`Capture`).
#: Source and destination are stored as :class:`Address` references --
#: addresses are frozen, so sharing them is safe and saves four
#: attribute reads per recorded packet.
_TIMESTAMP, _DIRECTION, _SRC, _DST = range(4)
_PROTO, _KIND, _WIRE, _PAYLOAD, _FLOW, _PACKET_ID = range(4, 10)

_DIRECTION_CODE = {Direction.OUT: 0, Direction.IN: 1}
_KIND_CODE = {kind: i for i, kind in enumerate(PacketKind)}


class _CaptureBlock:
    """One bulk-appended packet train, expanded into rows lazily.

    Burst commits land a whole train in a single ``record_block`` call;
    the O(n) conversion into per-packet row tuples is deferred to the
    first query, where it merges into the same column-cache rebuild the
    scalar path already pays.
    """

    __slots__ = ("timestamps", "direction", "src", "dst", "proto", "kind",
                 "wire_bytes", "payload_sizes", "flow_id", "packet_id_start")

    def __init__(self, timestamps, direction, src, dst, proto, kind,
                 wire_bytes, payload_sizes, flow_id, packet_id_start) -> None:
        self.timestamps = timestamps
        self.direction = direction
        self.src = src
        self.dst = dst
        self.proto = proto
        self.kind = kind
        self.wire_bytes = wire_bytes
        self.payload_sizes = payload_sizes
        self.flow_id = flow_id
        self.packet_id_start = packet_id_start


@dataclass(frozen=True)
class CapturedPacket:
    """One record in a capture file.

    Attributes:
        timestamp: Host-local capture time (includes clock error).
        direction: :data:`Direction.IN` or :data:`Direction.OUT`.
        src_ip/src_port/dst_ip/dst_port: Transport 4-tuple.
        proto: Transport protocol.
        kind: Semantic packet type (media, probe...).
        wire_bytes: On-the-wire packet size.
        payload_bytes: Layer-7 payload length (rate analyses use this).
        flow_id: Media stream correlation id.
        packet_id: Simulator-unique packet id.
    """

    __slots__ = (
        "timestamp",
        "direction",
        "src_ip",
        "src_port",
        "dst_ip",
        "dst_port",
        "proto",
        "kind",
        "wire_bytes",
        "payload_bytes",
        "flow_id",
        "packet_id",
    )

    timestamp: float
    direction: Direction
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    proto: Protocol
    kind: PacketKind
    wire_bytes: int
    payload_bytes: int
    flow_id: str
    packet_id: int

    @property
    def remote_endpoint(self) -> EndpointKey:
        """The non-local side of the packet as an endpoint key."""
        if self.direction is Direction.OUT:
            return EndpointKey(self.dst_ip, self.dst_port, self.proto.value)
        return EndpointKey(self.src_ip, self.src_port, self.proto.value)


class Capture:
    """An in-memory pcap: append-only while running, queryable after.

    Captures are created via :meth:`repro.net.node.Host.start_capture`
    and can be stopped to freeze their contents; querying a running
    capture is allowed (the monitor's on-the-fly "active probing"
    pipeline does exactly that -- the column cache simply rebuilds when
    new rows have landed since it was last taken).
    """

    def __init__(self, host_name: str) -> None:
        self.host_name = host_name
        self._flat: List[tuple] = []
        # Records appended since the last flatten, in arrival order:
        # plain row tuples interleaved with _CaptureBlock trains.  Kept
        # separate so bulk appends stay O(1) on the hot path.
        self._deferred: List[object] = []
        self._count = 0
        self._running = True
        self._cols_len = -1
        self._timestamps: Optional[np.ndarray] = None
        self._payloads: Optional[np.ndarray] = None
        self._direction_codes: Optional[np.ndarray] = None
        self._kind_codes: Optional[np.ndarray] = None

    @property
    def _rows(self) -> List[tuple]:
        """The flat row store, expanding any pending bulk blocks."""
        if self._deferred:
            self._flatten()
        return self._flat

    def _flatten(self) -> None:
        append = self._flat.append
        for entry in self._deferred:
            if type(entry) is tuple:
                append(entry)
                continue
            direction = entry.direction
            src = entry.src
            dst = entry.dst
            proto = entry.proto
            kind = entry.kind
            wires = entry.wire_bytes
            sizes = entry.payload_sizes
            flow = entry.flow_id
            pid = entry.packet_id_start
            for i, stamp in enumerate(entry.timestamps.tolist()):
                append((stamp, direction, src, dst, proto, kind,
                        wires[i], sizes[i], flow, pid + i))
        self._deferred.clear()

    def __len__(self) -> int:
        return self._count

    def __iter__(self):
        return (self._materialise(row) for row in self._rows)

    def __getitem__(self, index: int) -> CapturedPacket:
        return self._materialise(self._rows[index])

    @property
    def running(self) -> bool:
        """Whether the capture is still recording."""
        return self._running

    def stop(self) -> None:
        """Stop recording; subsequent packets are ignored."""
        self._running = False

    def record(self, packet: Packet, direction: Direction, local_time: float) -> None:
        """Append one packet record (called by the owning host)."""
        if not self._running:
            return
        row = (
            local_time,
            direction,
            packet.src,
            packet.dst,
            packet.proto,
            packet.kind,
            packet.wire_bytes,
            packet.payload_bytes,
            packet.flow_id,
            packet.packet_id,
        )
        if self._deferred:
            self._deferred.append(row)
        else:
            self._flat.append(row)
        self._count += 1

    def record_block(
        self,
        direction: Direction,
        src,
        dst,
        proto: Protocol,
        kind: PacketKind,
        local_times: np.ndarray,
        wire_bytes,
        payload_sizes,
        flow_id: str,
        packet_id_start: int,
    ) -> None:
        """Append a whole packet train in one call (burst commits).

        ``local_times`` is a float64 array of host-local timestamps;
        ``wire_bytes``/``payload_sizes`` are per-packet int sequences.
        Packet ``i`` of the train gets id ``packet_id_start + i``.  The
        expansion into row tuples is deferred until the next query, so
        the append itself is O(1).
        """
        if not self._running:
            return
        self._deferred.append(_CaptureBlock(
            local_times, direction, src, dst, proto, kind,
            wire_bytes, payload_sizes, flow_id, packet_id_start,
        ))
        self._count += len(payload_sizes)

    # ----------------------------------------------------------------- #
    # Columnar access.
    # ----------------------------------------------------------------- #

    @staticmethod
    def _materialise(row: tuple) -> CapturedPacket:
        src = row[_SRC]
        dst = row[_DST]
        return CapturedPacket(
            row[_TIMESTAMP], row[_DIRECTION], src.ip, src.port, dst.ip,
            dst.port, row[_PROTO], row[_KIND], row[_WIRE], row[_PAYLOAD],
            row[_FLOW], row[_PACKET_ID],
        )

    def _refresh_columns(self) -> None:
        rows = self._rows
        n = len(rows)
        self._timestamps = np.fromiter(
            (row[_TIMESTAMP] for row in rows), dtype=np.float64, count=n
        )
        self._payloads = np.fromiter(
            (row[_PAYLOAD] for row in rows), dtype=np.int64, count=n
        )
        direction_code = _DIRECTION_CODE
        self._direction_codes = np.fromiter(
            (direction_code[row[_DIRECTION]] for row in rows),
            dtype=np.uint8, count=n,
        )
        kind_code = _KIND_CODE
        self._kind_codes = np.fromiter(
            (kind_code[row[_KIND]] for row in rows), dtype=np.uint8, count=n
        )
        self._cols_len = n

    def _columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(timestamps, payloads, direction codes, kind codes) arrays."""
        if self._cols_len != self._count:
            self._refresh_columns()
        return (
            self._timestamps,
            self._payloads,
            self._direction_codes,
            self._kind_codes,
        )

    def _select(
        self,
        direction: Optional[Direction],
        kinds: Optional[Iterable[PacketKind]],
    ) -> np.ndarray:
        """Boolean mask of rows matching a direction/kind filter."""
        _, _, dir_codes, kind_codes = self._columns()
        mask = np.ones(self._count, dtype=bool)
        if direction is not None:
            mask &= dir_codes == _DIRECTION_CODE[direction]
        if kinds is not None:
            wanted = [_KIND_CODE[k] for k in kinds]
            if len(wanted) == 1:
                mask &= kind_codes == wanted[0]
            else:
                mask &= np.isin(kind_codes, wanted)
        return mask

    # ----------------------------------------------------------------- #
    # Query helpers (the "offline analysis" toolbox).
    # ----------------------------------------------------------------- #

    def filter(
        self,
        direction: Optional[Direction] = None,
        kind: Optional[PacketKind] = None,
        kinds: Optional[Iterable[PacketKind]] = None,
        remote_port: Optional[int] = None,
        flow_id: Optional[str] = None,
        predicate: Optional[Callable[[CapturedPacket], bool]] = None,
    ) -> List[CapturedPacket]:
        """Select records matching all given criteria (BPF, kindly)."""
        if kind is not None and kinds is not None:
            raise CaptureError("pass either kind or kinds, not both")
        kind_set = {kind} if kind is not None else set(kinds) if kinds else None
        result = []
        materialise = self._materialise
        for row in self._rows:
            if direction is not None and row[_DIRECTION] is not direction:
                continue
            if kind_set is not None and row[_KIND] not in kind_set:
                continue
            if flow_id is not None and row[_FLOW] != flow_id:
                continue
            record = materialise(row)
            if remote_port is not None and record.remote_endpoint.port != remote_port:
                continue
            if predicate is not None and not predicate(record):
                continue
            result.append(record)
        return result

    def time_size_series(
        self,
        direction: Direction,
        kind: Optional[PacketKind] = None,
    ) -> List[Tuple[float, int]]:
        """(timestamp, payload_bytes) pairs, the raw data of Figure 2."""
        mask = self._select(direction, None if kind is None else (kind,))
        timestamps, payloads, _, _ = self._columns()
        return list(zip(
            timestamps[mask].tolist(), payloads[mask].tolist()
        ))

    def total_payload_bytes(
        self, direction: Direction, kind: Optional[PacketKind] = None
    ) -> int:
        """Sum of L7 payload bytes in one direction."""
        mask = self._select(direction, None if kind is None else (kind,))
        _, payloads, _, _ = self._columns()
        return int(payloads[mask].sum())

    def payload_bytes_between(
        self,
        direction: Direction,
        start: float,
        end: float,
        kinds: Optional[Iterable[PacketKind]] = None,
    ) -> int:
        """L7 payload bytes in ``[start, end)`` -- one timeline phase.

        The right-open window matches phase segmentation: a packet on
        a phase boundary belongs to the phase it *enters*, so summing
        over consecutive windows never double-counts.  Records are
        appended in timestamp order (event order through a monotonic
        affine clock), so the window reduces to one ``searchsorted``
        slice over the timestamp column -- many-phase timelines (trace
        replay) stay cheap even over large captures.
        """
        timestamps, payloads, dir_codes, kind_codes = self._columns()
        lo = int(np.searchsorted(timestamps, start, side="left"))
        hi = int(np.searchsorted(timestamps, end, side="left"))
        if hi <= lo:
            return 0
        # Filter on the window slice only: many-phase timelines issue
        # one query per phase, and full-capture masks would make that
        # O(phases x capture) instead of O(phases x window).
        mask = dir_codes[lo:hi] == _DIRECTION_CODE[direction]
        if kinds is not None:
            wanted = [_KIND_CODE[k] for k in kinds]
            window_kinds = kind_codes[lo:hi]
            if len(wanted) == 1:
                mask &= window_kinds == wanted[0]
            else:
                mask &= np.isin(window_kinds, wanted)
        return int(payloads[lo:hi][mask].sum())

    def payload_rate_bps(
        self,
        direction: Direction,
        start: Optional[float] = None,
        end: Optional[float] = None,
        kind: Optional[PacketKind] = None,
    ) -> float:
        """Average Layer-7 data rate over a time window.

        This is the paper's Fig. 15 metric ("computed from Layer-7
        payload length in pcap traces").  The window defaults to the
        first/last matching packet timestamps.

        Raises :class:`~repro.errors.CaptureError` if no packets match.
        """
        mask = self._select(direction, None if kind is None else (kind,))
        timestamps, payloads, _, _ = self._columns()
        if start is not None or end is not None:
            lo = start if start is not None else float("-inf")
            hi = end if end is not None else float("inf")
            mask = mask & (timestamps >= lo) & (timestamps <= hi)
        selected = timestamps[mask]
        if selected.size == 0:
            raise CaptureError("no packets in window; cannot compute a rate")
        if start is None:
            start = float(selected[0])
        if end is None:
            end = float(selected[-1])
        duration = end - start
        if duration <= 0:
            raise CaptureError("rate window must have positive duration")
        total = int(payloads[mask].sum())
        return rate_from_bytes(total, duration)

    def remote_endpoints(
        self,
        direction: Optional[Direction] = None,
        port: Optional[int] = None,
        media_only: bool = True,
    ) -> Set[EndpointKey]:
        """Distinct remote endpoints seen in the trace.

        This is the monitor's endpoint-discovery step: the paper counts
        how many distinct streaming endpoints a client encounters over
        sessions (Section 4.2's 20 / 19.5 / 1.8 finding).
        """
        media_kinds = {PacketKind.MEDIA_VIDEO, PacketKind.MEDIA_AUDIO}
        found: Set[EndpointKey] = set()
        for row in self._rows:
            if direction is not None and row[_DIRECTION] is not direction:
                continue
            if media_only and row[_KIND] not in media_kinds:
                continue
            remote = row[_DST] if row[_DIRECTION] is Direction.OUT else row[_SRC]
            endpoint = EndpointKey(remote.ip, remote.port, row[_PROTO].value)
            if port is not None and endpoint.port != port:
                continue
            found.add(endpoint)
        return found

    def span(self) -> Tuple[float, float]:
        """(first, last) record timestamps.

        Raises :class:`~repro.errors.CaptureError` on an empty capture.
        """
        if not self._rows:
            raise CaptureError("capture is empty")
        return self._rows[0][_TIMESTAMP], self._rows[-1][_TIMESTAMP]
