"""The discrete-event simulation engine.

A minimal, deterministic event loop: callbacks scheduled at absolute or
relative times, executed in time order with FIFO tie-breaking.  Every
moving part of the testbed (packet serialisation, propagation, codec
frame ticks, probe loops, CPU samplers) is an event on this loop, which
is what makes the whole benchmark reproducible (design goal D3).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError


class Simulator:
    """Deterministic discrete-event scheduler.

    Events are ``(time, sequence, callback, args)`` tuples on a heap;
    the sequence number makes simultaneous events run in scheduling
    order, so repeated runs with the same seed are bit-identical.
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Raises :class:`~repro.errors.SimulationError` for negative
        delays: the simulator never travels backwards.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        heapq.heappush(self._queue, (when, next(self._sequence), callback, args))

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Run events in time order.

        Args:
            until: Stop once the clock would pass this time; events at
                exactly ``until`` are executed.  ``None`` drains the
                queue completely.
            max_events: Safety valve against runaway event loops: at
                most this many events run before the error fires.

        Raises:
            SimulationError: If re-entered or if ``max_events`` fires.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                when, _seq, callback, args = self._queue[0]
                if until is not None and when > until:
                    break
                if executed >= max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; possible event storm"
                    )
                heapq.heappop(self._queue)
                self._now = when
                callback(*args)
                self._processed += 1
                executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: float) -> None:
        """Run for ``duration`` seconds of simulated time."""
        if duration < 0:
            raise SimulationError(f"duration must be >= 0, got {duration}")
        self.run(until=self._now + duration)
