"""The discrete-event simulation engine.

A minimal, deterministic event loop: callbacks scheduled at absolute or
relative times, executed in time order with FIFO tie-breaking.  Every
moving part of the testbed (packet serialisation, propagation, codec
frame ticks, probe loops, CPU samplers) is an event on this loop, which
is what makes the whole benchmark reproducible (design goal D3).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError


class PeriodicTask:
    """Handle for a repeating event scheduled by ``schedule_periodic``.

    Fires ``callback(*args)`` at absolute multiples of the period from
    the task's start time -- ``start + k * period`` -- so arbitrarily
    long trains never drift off their clock the way accumulated
    relative delays would.  The train stops when :meth:`cancel` is
    called or when the callback returns ``False``.
    """

    __slots__ = ("_simulator", "period", "rate", "callback", "args",
                 "start", "index", "index_step", "cancelled")

    def __init__(self, simulator: "Simulator", period: Optional[float],
                 callback: Callable[..., Any], args: tuple,
                 start: float, rate: Optional[float] = None,
                 index_step: int = 1) -> None:
        self._simulator = simulator
        self.period = period
        self.rate = rate
        self.callback = callback
        self.args = args
        self.start = start
        self.index = 0
        self.index_step = index_step
        self.cancelled = False

    @property
    def next_time(self) -> float:
        """Absolute time of the next scheduled firing.

        Rate-defined trains tick at ``start + k / rate`` -- the exact
        grid a frame-clock analysis divides by -- rather than
        ``k * (1/rate)``, whose reciprocal rounding walks off that grid
        by an ulp for some ``k``.
        """
        if self.rate is not None:
            return self.start + self.index / self.rate
        return self.start + self.index * self.period

    def cancel(self) -> None:
        """Stop the train; an already-queued firing becomes a no-op."""
        self.cancelled = True

    def _fire(self) -> None:
        if self.cancelled:
            return
        if self.callback(*self.args) is False:
            self.cancelled = True
            return
        self.index += self.index_step
        self._simulator.schedule_at(self.next_time, self._fire)


class Simulator:
    """Deterministic discrete-event scheduler.

    Events are ``(time, sequence, callback, args)`` tuples on a heap;
    the sequence number makes simultaneous events run in scheduling
    order, so repeated runs with the same seed are bit-identical.
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False
        self._processed = 0
        # Time up to which the current ``run`` call is allowed to
        # execute events.  Burst commits consult this so packets whose
        # deliveries land past the horizon stay in flight, exactly as
        # their per-packet heap events would.  Outside ``run`` it
        # equals ``now`` (nothing may execute).
        self._horizon = 0.0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    @property
    def horizon(self) -> float:
        """Latest time the active ``run`` call may execute events at.

        ``inf`` while draining, the ``until`` bound while running to a
        horizon, and the current time when no run is active.
        """
        return self._horizon

    def peek_time(self) -> float:
        """Time of the earliest queued event, or ``inf`` when empty."""
        return self._queue[0][0] if self._queue else math.inf

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Raises :class:`~repro.errors.SimulationError` for negative
        delays: the simulator never travels backwards.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        heapq.heappush(self._queue, (when, next(self._sequence), callback, args))

    def schedule_periodic(
        self,
        period: Optional[float],
        callback: Callable[..., Any],
        *args: Any,
        first_delay: float = 0.0,
        rate: Optional[float] = None,
        index_step: int = 1,
    ) -> PeriodicTask:
        """Run ``callback(*args)`` every ``period`` seconds, drift-free.

        Firings land at absolute multiples of the period from the
        start (``now + first_delay``), not at accumulated relative
        offsets.  Pass ``rate`` (ticks per second) instead of a period
        for frame-clock trains: ticks then sit at ``start + k / rate``
        exactly, the grid per-frame analyses divide by.  With the
        default ``first_delay`` of 0 the first tick runs
        *synchronously* -- matching a loop whose begin handler invokes
        its tick directly.  The callback ends the train by returning
        ``False``; the returned handle can also
        :meth:`~PeriodicTask.cancel` it externally.

        ``index_step`` fires every N-th point of the period grid --
        ``start + (k * index_step) * period`` -- for callbacks that
        batch several grid units per tick (the audio sender encodes
        five 20 ms frames per scheduling tick) while keeping their
        timestamps on the finer grid's exact floats.
        """
        if (period is None) == (rate is None):
            raise SimulationError("pass exactly one of period or rate")
        if period is not None and period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        if rate is not None and rate <= 0:
            raise SimulationError(f"rate must be positive, got {rate}")
        if first_delay < 0:
            raise SimulationError(
                f"cannot schedule in the past (first_delay={first_delay})"
            )
        if index_step < 1:
            raise SimulationError(f"index_step must be >= 1, got {index_step}")
        task = PeriodicTask(
            self, period, callback, args, self._now + first_delay,
            rate=rate, index_step=index_step,
        )
        if first_delay == 0:
            task._fire()
        else:
            self.schedule_at(task.start, task._fire)
        return task

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Run events in time order.

        Args:
            until: Stop once the clock would pass this time; events at
                exactly ``until`` are executed.  ``None`` drains the
                queue completely.
            max_events: Safety valve against runaway event loops: at
                most this many events run before the error fires.

        Raises:
            SimulationError: If re-entered or if ``max_events`` fires.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        self._horizon = math.inf if until is None else until
        executed = 0
        # The loop body runs tens of millions of times per campaign:
        # bind the queue and heappop once instead of re-resolving the
        # attribute and module global on every event.
        queue = self._queue
        heappop = heapq.heappop
        try:
            if until is None:
                # Drain variant: no horizon check, pop directly.
                while queue:
                    if executed >= max_events:
                        raise SimulationError(
                            f"exceeded {max_events} events; possible event storm"
                        )
                    item = heappop(queue)
                    self._now = item[0]
                    item[2](*item[3])
                    executed += 1
            else:
                while queue:
                    item = queue[0]
                    when = item[0]
                    if when > until:
                        break
                    if executed >= max_events:
                        raise SimulationError(
                            f"exceeded {max_events} events; possible event storm"
                        )
                    heappop(queue)
                    self._now = when
                    item[2](*item[3])
                    executed += 1
                if self._now < until:
                    self._now = until
        finally:
            self._processed += executed
            self._running = False
            self._horizon = self._now

    def run_for(self, duration: float) -> None:
        """Run for ``duration`` seconds of simulated time."""
        if duration < 0:
            raise SimulationError(f"duration must be >= 0, got {duration}")
        self.run(until=self._now + duration)
