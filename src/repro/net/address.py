"""Network addressing: host addresses and service-endpoint keys.

The paper identifies streaming service endpoints by ``(IP address,
TCP/UDP port)`` discovered from packet traces (Section 3.2).  We model
the same: every host owns an IP-like string address, and services bind
ports on hosts.  :class:`EndpointKey` is the hashable (ip, port, proto)
triple that the client monitor extracts from captures and probes with
RTT measurements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from ..errors import ConfigurationError

#: Designated streaming ports observed by the paper (Section 4.2).
ZOOM_UDP_PORT = 8801
WEBEX_UDP_PORT = 9000
MEET_UDP_PORT = 19305

#: Lowest ephemeral port handed out by :class:`EphemeralPortAllocator`.
EPHEMERAL_PORT_BASE = 49152
EPHEMERAL_PORT_MAX = 65535


@dataclass(frozen=True, order=True)
class Address:
    """A transport address: ``ip:port``.

    Attributes:
        ip: Dotted-quad style identifier.  The simulator does not parse
            it; it only needs to be unique per host interface.
        port: Transport port number, 1-65535.
    """

    ip: str
    port: int

    def __post_init__(self) -> None:
        if not self.ip:
            raise ConfigurationError("ip must be non-empty")
        if not 1 <= self.port <= 65535:
            raise ConfigurationError(f"port out of range: {self.port}")

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"

    def with_port(self, port: int) -> "Address":
        """A copy of this address bound to a different port."""
        return Address(self.ip, port)


@dataclass(frozen=True, order=True)
class EndpointKey:
    """Hashable identity of a streaming service endpoint.

    This is what the paper's active-probing pipeline discovers from
    traffic: the (ip, port, protocol) of the platform relay a client is
    streaming through.
    """

    ip: str
    port: int
    proto: str = "udp"

    @classmethod
    def of(cls, address: Address, proto: str = "udp") -> "EndpointKey":
        """Build a key from an :class:`Address`."""
        return cls(address.ip, address.port, proto)

    @property
    def address(self) -> Address:
        """The transport address of this endpoint."""
        return Address(self.ip, self.port)

    def __str__(self) -> str:
        return f"{self.proto}://{self.ip}:{self.port}"


class IpAllocator:
    """Hands out unique synthetic IPv4-style addresses.

    Each network owns one allocator so host addresses never collide.
    Addresses are drawn from distinct /16s per "network tier" so traces
    are easy to read (clients vs platform infrastructure).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Iterator[int]] = {}
        self._prefixes = {"client": "10.0", "infra": "172.16", "mobile": "192.168"}

    def allocate(self, tier: str = "client") -> str:
        """Return the next unused IP in the given tier.

        Raises :class:`~repro.errors.ConfigurationError` for an unknown
        tier name.
        """
        if tier not in self._prefixes:
            raise ConfigurationError(f"unknown address tier: {tier!r}")
        counter = self._counters.setdefault(tier, itertools.count(1))
        value = next(counter)
        high, low = divmod(value, 250)
        return f"{self._prefixes[tier]}.{high}.{low + 1}"


class EphemeralPortAllocator:
    """Per-host allocator for ephemeral source ports.

    Zoom's two-party calls stream peer-to-peer "on an ephemeral port"
    (Section 4.2, footnote 2); this allocator provides those ports.
    """

    def __init__(self, base: int = EPHEMERAL_PORT_BASE) -> None:
        if not EPHEMERAL_PORT_BASE <= base <= EPHEMERAL_PORT_MAX:
            raise ConfigurationError(f"ephemeral base out of range: {base}")
        self._next = base

    def allocate(self) -> int:
        """Return the next free ephemeral port."""
        if self._next > EPHEMERAL_PORT_MAX:
            raise ConfigurationError("ephemeral port space exhausted")
        port = self._next
        self._next += 1
        return port
