"""Region registry reproducing Table 3 of the paper.

Twelve Azure regions host the emulated clients: seven VMs in the US and
seven in Europe (two regions host two VMs each).  This module records
each region's location so the latency model can derive realistic
inter-region delays, plus additional *infrastructure sites* used by the
platform models (Zoom/Webex relay locations, Google's edge POPs) and the
residential vantage point that hosts the Android testbed.

Note on naming: the paper's Table 3 labels a "Denmark" row ``DE`` while
the body text discusses clients "located further into central Europe
(e.g., Germany and Switzerland)" under the same label.  We follow the
body text and place ``DE`` in Frankfurt, Germany; the label is kept
verbatim so figures match the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from ..errors import ConfigurationError
from .geo import GeoPoint

#: Region group labels used by the paper.
GROUP_US = "US"
GROUP_EUROPE = "Europe"


@dataclass(frozen=True)
class Region:
    """One vantage-point region from Table 3.

    Attributes:
        name: The paper's region label (e.g. ``"US-East"``).
        location: Geographic position of the region's datacentre.
        group: ``"US"`` or ``"Europe"``.
        vm_count: Number of VMs Table 3 deploys in this region.
    """

    name: str
    location: GeoPoint
    group: str
    vm_count: int = 1

    def __post_init__(self) -> None:
        if self.vm_count < 1:
            raise ConfigurationError(f"vm_count must be >= 1, got {self.vm_count}")
        if self.group not in (GROUP_US, GROUP_EUROPE):
            raise ConfigurationError(f"unknown region group: {self.group}")


def _gp(name: str, lat: float, lon: float) -> GeoPoint:
    return GeoPoint(name=name, lat=lat, lon=lon)


#: Table 3 of the paper: VM locations/counts for streaming-lag testing.
TABLE3_REGIONS: Tuple[Region, ...] = (
    Region("US-Central", _gp("Des Moines, IA", 41.59, -93.62), GROUP_US, 1),
    Region("US-NCentral", _gp("Chicago, IL", 41.88, -87.63), GROUP_US, 1),
    Region("US-SCentral", _gp("San Antonio, TX", 29.42, -98.49), GROUP_US, 1),
    Region("US-East", _gp("Richmond, VA", 37.54, -77.44), GROUP_US, 2),
    Region("US-West", _gp("San Francisco, CA", 37.77, -122.42), GROUP_US, 2),
    Region("CH", _gp("Zurich, Switzerland", 47.38, 8.54), GROUP_EUROPE, 1),
    Region("DE", _gp("Frankfurt, Germany", 50.11, 8.68), GROUP_EUROPE, 1),
    Region("IE", _gp("Dublin, Ireland", 53.35, -6.26), GROUP_EUROPE, 1),
    Region("NL", _gp("Amsterdam, Netherlands", 52.37, 4.90), GROUP_EUROPE, 1),
    Region("FR", _gp("Paris, France", 48.86, 2.35), GROUP_EUROPE, 1),
    Region("UK-South", _gp("London, UK", 51.51, -0.13), GROUP_EUROPE, 1),
    Region("UK-West", _gp("Cardiff, UK", 51.48, -3.18), GROUP_EUROPE, 1),
)

#: Additional named sites used by platform models and the mobile testbed.
#: Keys are site names referenced from ``repro.platforms`` configs.
KNOWN_SITES: Dict[str, GeoPoint] = {
    # Residential vantage point hosting the Android devices (Section 5:
    # "a residential access network of the east-coast of US").
    "residential-us-east": _gp("Murray Hill, NJ (residential)", 40.68, -74.40),
    # Zoom relay datacentres (US footprint with regional load balancing).
    "zoom-us-east": _gp("Ashburn, VA", 39.04, -77.49),
    "zoom-us-central": _gp("Dallas, TX", 32.78, -96.80),
    "zoom-us-west": _gp("San Jose, CA", 37.34, -121.89),
    # Webex relays sessions via its US-east infrastructure (Finding-1).
    "webex-us-east": _gp("Richardson, TX / East relay (VA)", 38.90, -77.26),
    # Google Meet edge POPs: cross-continental presence (Finding-2).
    "meet-us-east": _gp("Ashburn, VA (Google)", 39.02, -77.46),
    "meet-us-central": _gp("Council Bluffs, IA (Google)", 41.26, -95.86),
    "meet-us-south": _gp("Midlothian, TX (Google)", 32.48, -97.01),
    "meet-us-west": _gp("The Dalles, OR (Google)", 45.59, -121.18),
    "meet-eu-west": _gp("Dublin, IE (Google)", 53.32, -6.34),
    "meet-eu-london": _gp("London, UK (Google)", 51.52, -0.08),
    "meet-eu-central": _gp("Frankfurt, DE (Google)", 50.12, 8.74),
    "meet-eu-belgium": _gp("St. Ghislain, BE (Google)", 50.47, 3.87),
    "meet-eu-zurich": _gp("Zurich, CH (Google)", 47.42, 8.52),
}


class RegionRegistry:
    """Lookup and iteration over vantage-point regions and named sites.

    The default registry (:func:`default_registry`) holds Table 3 plus
    :data:`KNOWN_SITES`; experiments may build custom registries to
    model other deployments.
    """

    def __init__(
        self,
        regions: Tuple[Region, ...] = TABLE3_REGIONS,
        sites: Dict[str, GeoPoint] | None = None,
    ) -> None:
        self._regions: Dict[str, Region] = {}
        for region in regions:
            if region.name in self._regions:
                raise ConfigurationError(f"duplicate region name: {region.name}")
            self._regions[region.name] = region
        self._sites = dict(KNOWN_SITES if sites is None else sites)

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions.values())

    def __len__(self) -> int:
        return len(self._regions)

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def get(self, name: str) -> Region:
        """Return the region named ``name``.

        Raises :class:`~repro.errors.ConfigurationError` if unknown.
        """
        try:
            return self._regions[name]
        except KeyError:
            raise ConfigurationError(f"unknown region: {name!r}") from None

    def site(self, name: str) -> GeoPoint:
        """Return a named infrastructure site location."""
        try:
            return self._sites[name]
        except KeyError:
            raise ConfigurationError(f"unknown site: {name!r}") from None

    def site_names(self) -> List[str]:
        """All registered infrastructure site names, sorted."""
        return sorted(self._sites)

    def by_group(self, group: str) -> List[Region]:
        """Regions in a group (``"US"`` or ``"Europe"``)."""
        return [r for r in self if r.group == group]

    def us_regions(self) -> List[Region]:
        """The seven-VM US deployment of Table 3."""
        return self.by_group(GROUP_US)

    def europe_regions(self) -> List[Region]:
        """The seven-VM Europe deployment of Table 3."""
        return self.by_group(GROUP_EUROPE)

    def vm_names(self, group: str) -> List[str]:
        """Expand regions into per-VM names, numbering duplicates.

        Regions with ``vm_count > 1`` yield ``name`` then ``name2``
        (matching the paper's ``US-East`` / ``US-East2`` labels).
        """
        names: List[str] = []
        for region in self.by_group(group):
            for index in range(region.vm_count):
                suffix = "" if index == 0 else str(index + 1)
                names.append(region.name + suffix)
        return names

    def region_of_vm(self, vm_name: str) -> Region:
        """Map a per-VM name (``US-East2``) back to its region."""
        base = vm_name.rstrip("0123456789")
        return self.get(base)


_DEFAULT: RegionRegistry | None = None


def default_registry() -> RegionRegistry:
    """The shared registry with Table 3 regions and known sites."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = RegionRegistry()
    return _DEFAULT
