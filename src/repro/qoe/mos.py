"""Mean-Opinion-Score interpretation bands.

Section 4.3 argues that the measured QoE drop between low- and
high-motion sessions "is significant enough to downgrade mean opinion
score (MOS) ratings by one level", citing the PSNR/SSIM-to-MOS
thresholds of Moldovan & Muntean (2017).  This module provides those
bands so analyses can express metric deltas in MOS levels.
"""

from __future__ import annotations

from ..errors import AnalysisError

#: MOS levels, 5 = excellent ... 1 = bad.
MOS_LEVELS = {5: "excellent", 4: "good", 3: "fair", 2: "poor", 1: "bad"}

#: PSNR (dB) lower bounds per MOS level (standard banding).
_PSNR_BANDS = ((37.0, 5), (31.0, 4), (25.0, 3), (20.0, 2))

#: SSIM lower bounds per MOS level.
_SSIM_BANDS = ((0.99, 5), (0.95, 4), (0.88, 3), (0.5, 2))


def mos_from_psnr(psnr_db: float) -> int:
    """Map a PSNR value to a MOS level (1-5)."""
    if psnr_db != psnr_db:  # NaN guard
        raise AnalysisError("PSNR is NaN")
    for threshold, level in _PSNR_BANDS:
        if psnr_db >= threshold:
            return level
    return 1


def mos_from_ssim(ssim_value: float) -> int:
    """Map an SSIM value to a MOS level (1-5)."""
    if ssim_value != ssim_value:
        raise AnalysisError("SSIM is NaN")
    for threshold, level in _SSIM_BANDS:
        if ssim_value >= threshold:
            return level
    return 1


def mos_downgrade(reference_mos: int, degraded_mos: int) -> int:
    """Number of MOS levels lost (>= 0)."""
    if not 1 <= reference_mos <= 5 or not 1 <= degraded_mos <= 5:
        raise AnalysisError("MOS levels must be in 1..5")
    return max(0, reference_mos - degraded_mos)
