"""ViSQOL-style audio quality: NSIM similarity mapped to MOS-LQO.

ViSQOL (Hines et al.) compares gammatone spectrograms of reference and
degraded speech with the Neurogram Similarity Index Measure (NSIM) and
maps the similarity to a MOS-LQO score in [1, 5].  We reproduce the
pipeline's shape:

1. mel-spaced log-power spectrograms of both signals (a practical
   stand-in for the gammatone filterbank),
2. NSIM -- an SSIM-like luminance*structure comparison over the
   spectrogram "image",
3. a logistic map from mean NSIM to MOS-LQO calibrated so that clean
   codec output at the platforms' audio rates scores ~4.0-4.6 and
   heavily damaged audio drops below 2 -- the dynamic range seen in
   the paper's Figure 18.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage, signal as sp_signal

from ..errors import AnalysisError

#: Spectrogram parameters (16 kHz speech mode).
FRAME_SAMPLES = 512
HOP_SAMPLES = 256
NUM_BANDS = 32

#: NSIM stabilising constants (on log-power spectrogram dynamic range).
_C1 = 0.01
_C2 = 0.03


def _mel_filterbank(
    sample_rate: int, n_fft: int, num_bands: int
) -> np.ndarray:
    """Triangular mel filterbank matrix (num_bands, n_fft // 2 + 1)."""

    def hz_to_mel(hz: float) -> float:
        return 2595.0 * np.log10(1.0 + hz / 700.0)

    def mel_to_hz(mel: np.ndarray) -> np.ndarray:
        return 700.0 * (10.0 ** (mel / 2595.0) - 1.0)

    low_mel = hz_to_mel(50.0)
    high_mel = hz_to_mel(sample_rate / 2.0)
    points_mel = np.linspace(low_mel, high_mel, num_bands + 2)
    points_hz = mel_to_hz(points_mel)
    bins = np.floor((n_fft + 1) * points_hz / sample_rate).astype(int)

    bank = np.zeros((num_bands, n_fft // 2 + 1))
    for band in range(num_bands):
        left, centre, right = bins[band], bins[band + 1], bins[band + 2]
        centre = max(centre, left + 1)
        right = max(right, centre + 1)
        for k in range(left, min(centre, bank.shape[1])):
            bank[band, k] = (k - left) / (centre - left)
        for k in range(centre, min(right, bank.shape[1])):
            bank[band, k] = (right - k) / (right - centre)
    return bank


def spectrogram(audio: np.ndarray, sample_rate: int = 16_000) -> np.ndarray:
    """Mel-spaced log-power spectrogram, normalised to [0, 1].

    Raises:
        AnalysisError: For audio shorter than one analysis frame.
    """
    if len(audio) < FRAME_SAMPLES:
        raise AnalysisError(
            f"audio too short for spectrogram: {len(audio)} samples"
        )
    freqs, times, stft = sp_signal.stft(
        audio.astype(np.float64),
        fs=sample_rate,
        nperseg=FRAME_SAMPLES,
        noverlap=FRAME_SAMPLES - HOP_SAMPLES,
        padded=False,
        boundary=None,
    )
    power = np.abs(stft) ** 2
    bank = _mel_filterbank(sample_rate, FRAME_SAMPLES, NUM_BANDS)
    mel_power = bank @ power
    log_power = 10.0 * np.log10(np.maximum(mel_power, 1e-12))
    # Normalise to [0, 1] over a fixed 80 dB dynamic range anchored at
    # the reference's peak, so silence maps to 0 regardless of level.
    peak = float(log_power.max())
    floor = peak - 80.0
    return np.clip((log_power - floor) / 80.0, 0.0, 1.0)


def nsim_similarity(
    reference_spectrogram: np.ndarray, degraded_spectrogram: np.ndarray
) -> float:
    """Neurogram similarity (luminance * structure) of two spectrograms."""
    if reference_spectrogram.shape != degraded_spectrogram.shape:
        raise AnalysisError(
            "spectrogram shapes differ: "
            f"{reference_spectrogram.shape} vs {degraded_spectrogram.shape}"
        )
    r = reference_spectrogram.astype(np.float64)
    d = degraded_spectrogram.astype(np.float64)
    sigma = 1.0

    mu_r = ndimage.gaussian_filter(r, sigma, mode="reflect")
    mu_d = ndimage.gaussian_filter(d, sigma, mode="reflect")
    var_r = ndimage.gaussian_filter(r * r, sigma, mode="reflect") - mu_r**2
    var_d = ndimage.gaussian_filter(d * d, sigma, mode="reflect") - mu_d**2
    cov = ndimage.gaussian_filter(r * d, sigma, mode="reflect") - mu_r * mu_d
    var_r = np.maximum(var_r, 0.0)
    var_d = np.maximum(var_d, 0.0)

    luminance = (2.0 * mu_r * mu_d + _C1) / (mu_r**2 + mu_d**2 + _C1)
    structure = (cov + _C2 / 2.0) / (np.sqrt(var_r * var_d) + _C2 / 2.0)
    nsim = luminance * structure
    return float(np.mean(nsim))


def mos_lqo(
    reference: np.ndarray,
    degraded: np.ndarray,
    sample_rate: int = 16_000,
) -> float:
    """MOS-LQO (1 = worst, 5 = best) of degraded speech vs reference.

    The logistic map is calibrated so NSIM ~0.99 scores ~4.6 (clean
    wideband codec output) and NSIM ~0.8 scores ~1.5 (badly damaged).
    """
    ref_spec = spectrogram(reference, sample_rate)
    deg_spec = spectrogram(degraded, sample_rate)
    frames = min(ref_spec.shape[1], deg_spec.shape[1])
    if frames < 1:
        raise AnalysisError("no overlapping spectrogram frames")
    similarity = nsim_similarity(ref_spec[:, :frames], deg_spec[:, :frames])
    # Logistic mapping NSIM -> MOS-LQO.
    midpoint = 0.90
    slope = 28.0
    mos = 1.0 + 4.0 / (1.0 + np.exp(-slope * (similarity - midpoint)))
    return float(np.clip(mos, 1.0, 5.0))
