"""Full-reference QoE metrics: the reproduction's VQMT and ViSQOL.

The paper scores recorded sessions against the injected media with the
VQMT tool (PSNR, SSIM, VIFp -- Section 4.3) and ViSQOL (MOS-LQO,
Section 4.4).  This package implements all four metrics from their
published definitions, on numpy luma frames and mono waveforms:

* :func:`repro.qoe.psnr.psnr` — Peak Signal-to-Noise Ratio,
* :func:`repro.qoe.ssim.ssim` — Structural Similarity (Wang et al. 2004),
* :func:`repro.qoe.vifp.vifp` — pixel-domain Visual Information
  Fidelity (Sheikh & Bovik 2006),
* :func:`repro.qoe.visqol.mos_lqo` — spectro-temporal NSIM similarity
  mapped to a 1-5 MOS-LQO score,
* :mod:`repro.qoe.mos` — metric-to-MOS bands used to interpret QoE
  deltas ("significant enough to downgrade MOS ratings by one level"),
* :class:`repro.qoe.vqmt.VideoQualityReport` — frame-by-frame scoring
  facade mirroring how the paper runs VQMT.

Every video metric has a batched ``*_stack`` form operating on
``(T, H, W)`` frame stacks in one vectorized pass (bit-compatible with
the per-frame functions); :mod:`repro.qoe.kernels` holds the shared
cached Gaussian windows and windowed statistics they are built on.
"""

from .kernels import as_frame_stack, gaussian_blur_stack, gaussian_kernel
from .mos import MOS_LEVELS, mos_from_psnr, mos_from_ssim
from .psnr import psnr, psnr_stack
from .ssim import ssim, ssim_stack
from .vifp import vifp, vifp_stack
from .visqol import mos_lqo, nsim_similarity
from .vqmt import VideoQualityReport, score_video

__all__ = [
    "MOS_LEVELS",
    "VideoQualityReport",
    "as_frame_stack",
    "gaussian_blur_stack",
    "gaussian_kernel",
    "mos_from_psnr",
    "mos_from_ssim",
    "mos_lqo",
    "nsim_similarity",
    "psnr",
    "psnr_stack",
    "score_video",
    "ssim",
    "ssim_stack",
    "vifp",
    "vifp_stack",
]
