"""VQMT facade: frame-by-frame full-reference video scoring.

"The VQMT tool computes a range of well-known objective QoE metrics
... Each of these metrics produces frame-by-frame similarity between
injected/recorded videos.  We take an average over all frames as a QoE
value." (Section 4.3.)  :func:`score_video` does exactly that, over
aligned frame sequences, returning a :class:`VideoQualityReport` with
per-frame series and their averages.

Scoring is batched: the sequences are stacked into ``(T, H, W)``
arrays and each metric's series is computed in one vectorized pass
(:func:`repro.qoe.psnr.psnr_stack` and friends), which is what makes
the paper's figure grids fast to regenerate.  Ragged inputs (frame
geometry changing mid-sequence) fall back to per-frame scoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..errors import AnalysisError
from .kernels import as_frame_stack
from .psnr import psnr, psnr_stack
from .ssim import ssim, ssim_stack
from .vifp import vifp, vifp_stack


@dataclass
class VideoQualityReport:
    """Per-frame and mean quality of a recorded stream.

    Attributes:
        psnr_series / ssim_series / vifp_series: Per-frame values.
    """

    psnr_series: List[float] = field(default_factory=list)
    ssim_series: List[float] = field(default_factory=list)
    vifp_series: List[float] = field(default_factory=list)

    @property
    def frame_count(self) -> int:
        """Number of scored frames."""
        return len(self.psnr_series)

    @property
    def mean_psnr(self) -> float:
        """Average PSNR over all frames (the paper's QoE value)."""
        self._require_frames()
        return float(np.mean(self.psnr_series))

    @property
    def mean_ssim(self) -> float:
        """Average SSIM over all frames."""
        self._require_frames()
        return float(np.mean(self.ssim_series))

    @property
    def mean_vifp(self) -> float:
        """Average VIFp over all frames.

        Raises :class:`~repro.errors.AnalysisError` when the report
        was produced with ``compute_vifp=False``.
        """
        if not self.vifp_series:
            raise AnalysisError("VIFp was not computed for this report")
        return float(np.mean(self.vifp_series))

    def _require_frames(self) -> None:
        if not self.psnr_series:
            raise AnalysisError("report holds no scored frames")

    def as_dict(self) -> dict:
        """Means as a plain dict, handy for tables."""
        return {
            "psnr": self.mean_psnr,
            "ssim": self.mean_ssim,
            "vifp": self.mean_vifp,
            "frames": self.frame_count,
        }


def _score_per_frame(
    reference: Sequence[np.ndarray],
    recorded: Sequence[np.ndarray],
    compute_vifp: bool,
) -> VideoQualityReport:
    """Frame-by-frame fallback for ragged (mixed-geometry) sequences."""
    report = VideoQualityReport()
    for ref_frame, rec_frame in zip(reference, recorded):
        report.psnr_series.append(psnr(ref_frame, rec_frame))
        report.ssim_series.append(ssim(ref_frame, rec_frame))
        if compute_vifp:
            report.vifp_series.append(vifp(ref_frame, rec_frame))
    return report


def score_video(
    reference: Sequence[np.ndarray],
    recorded: Sequence[np.ndarray],
    compute_vifp: bool = True,
) -> VideoQualityReport:
    """Score a recording against its reference, frame by frame.

    Sequences must already be aligned (see
    :func:`repro.media.sync.align_recordings`) and equal length; a
    ``(T, H, W)`` stack is accepted wherever a frame sequence is.

    Args:
        compute_vifp: VIFp is the most expensive metric; disable it
            for quick checks (the series is left empty).

    Raises:
        AnalysisError: On empty or length-mismatched inputs.
    """
    if len(reference) == 0:
        raise AnalysisError("no frames to score")
    if len(reference) != len(recorded):
        raise AnalysisError(
            f"length mismatch: {len(reference)} reference vs "
            f"{len(recorded)} recorded frames"
        )
    try:
        ref_stack = as_frame_stack(reference)
        rec_stack = as_frame_stack(recorded)
    except AnalysisError:
        return _score_per_frame(reference, recorded, compute_vifp)
    report = VideoQualityReport(
        psnr_series=[float(v) for v in psnr_stack(ref_stack, rec_stack)],
        ssim_series=[float(v) for v in ssim_stack(ref_stack, rec_stack)],
    )
    if compute_vifp:
        report.vifp_series = [float(v) for v in vifp_stack(ref_stack, rec_stack)]
    return report
