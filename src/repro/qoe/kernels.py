"""Shared batched filtering kernels for the QoE metrics.

The paper's scoring stack (Section 4.3) evaluates PSNR/SSIM/VIFp frame
by frame; profiling showed the per-frame ``scipy.ndimage``
``gaussian_filter`` calls dominating the testbed's wall clock.  This
module provides the batched primitives the metrics share:

* :func:`gaussian_kernel` -- the separable 1-D Gaussian window,
  computed once per ``(sigma, dtype)`` and cached,
* :func:`gaussian_blur_stack` -- that window applied along the last
  two axes of a ``(T, H, W)`` frame stack in two passes, exactly as
  ``scipy.ndimage.gaussian_filter`` applies it to each 2-D frame,
* :func:`window_stats` -- the windowed mu/sigma statistics both SSIM
  and VIFp build their maps from, computed once per (stack, sigma),
* :func:`as_frame_stack` -- sequence-of-frames -> ``(T, H, W)`` array.

Batched results are bit-compatible with per-frame filtering: the same
kernel weights are correlated along the same axes in the same order,
so every frame slice of the output matches the scalar pipeline.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import ndimage

from ..errors import AnalysisError

#: Kernel radius in standard deviations (scipy's default ``truncate``).
TRUNCATE = 4.0

#: Target working-set size of one processing block.  Batched passes
#: walk their stacks in blocks of roughly this many bytes per float64
#: frame plane: large enough to amortise per-call overhead, small
#: enough that the handful of temporaries a pass allocates stays
#: cache-resident instead of thrashing DRAM on hundred-frame stacks.
BLOCK_BYTES = 2 << 20


def block_frames(frame_shape: Tuple[int, ...], itemsize: int = 8) -> int:
    """Frames per processing block for a given frame geometry."""
    frame_bytes = int(np.prod(frame_shape)) * itemsize
    return max(1, BLOCK_BYTES // max(frame_bytes, 1))


@lru_cache(maxsize=32)
def _cached_kernel(sigma: float, dtype_name: str) -> np.ndarray:
    radius = int(TRUNCATE * sigma + 0.5)
    x = np.arange(-radius, radius + 1)
    phi = np.exp(-0.5 / (sigma * sigma) * x.astype(np.float64) ** 2)
    kernel = phi / phi.sum()
    return kernel.astype(np.dtype(dtype_name))


def gaussian_kernel(sigma: float, dtype: np.dtype = np.float64) -> np.ndarray:
    """The normalised separable Gaussian window for ``sigma``.

    Matches ``scipy.ndimage.gaussian_filter1d``'s kernel (order 0,
    truncate 4.0).  Cached per ``(sigma, dtype)``; treat the returned
    array as read-only.
    """
    if sigma <= 0:
        raise AnalysisError(f"sigma must be positive, got {sigma}")
    return _cached_kernel(float(sigma), np.dtype(dtype).name)


def gaussian_blur_stack(stack: np.ndarray, sigma: float) -> np.ndarray:
    """Gaussian-blur every frame of a stack (reflect boundaries).

    Applies the cached separable window along axes -2 and -1, which is
    exactly what ``ndimage.gaussian_filter`` does per 2-D frame -- for
    float input the output is bit-identical to filtering each frame
    individually.  Integer stacks (e.g. uint8 recordings) are promoted
    to float64 first; ``correlate1d`` would otherwise truncate every
    pass back to the integer dtype.
    """
    stack = np.asarray(stack)
    if not np.issubdtype(stack.dtype, np.floating):
        stack = stack.astype(np.float64)
    kernel = gaussian_kernel(sigma)
    out = ndimage.correlate1d(stack, kernel, axis=-2, mode="reflect")
    return ndimage.correlate1d(out, kernel, axis=-1, mode="reflect", output=out)


def window_stats(
    x: np.ndarray, y: np.ndarray, sigma: float, clamp: bool = True
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Windowed means, variances and covariance of two frame stacks.

    The statistics both SSIM and VIFp are built from, computed in one
    pass over the whole stack: ``(mu_x, mu_y, sigma_xx, sigma_yy,
    sigma_xy)``.  With ``clamp`` the variances are floored at zero
    (VIFp's convention); SSIM keeps the raw values.
    """
    mu_x = gaussian_blur_stack(x, sigma)
    mu_y = gaussian_blur_stack(y, sigma)
    sigma_xx = gaussian_blur_stack(x * x, sigma) - mu_x * mu_x
    sigma_yy = gaussian_blur_stack(y * y, sigma) - mu_y * mu_y
    sigma_xy = gaussian_blur_stack(x * y, sigma) - mu_x * mu_y
    if clamp:
        sigma_xx = np.maximum(sigma_xx, 0.0)
        sigma_yy = np.maximum(sigma_yy, 0.0)
    return mu_x, mu_y, sigma_xx, sigma_yy, sigma_xy


def as_frame_stack(
    frames: "Sequence[np.ndarray] | np.ndarray",
    dtype: Optional[np.dtype] = None,
) -> np.ndarray:
    """A ``(T, H, W)`` array from a frame sequence (or stack).

    Raises:
        AnalysisError: If the frames do not share a single 2-D shape.
    """
    try:
        stack = np.asarray(frames, dtype=dtype)
    except ValueError as exc:
        raise AnalysisError(f"frames do not stack: {exc}") from exc
    if stack.ndim == 2:
        stack = stack[None]
    if stack.ndim != 3 or stack.dtype == object:
        raise AnalysisError(
            "expected a sequence of equally-shaped (H, W) frames, got "
            f"shape {stack.shape}"
        )
    return stack
