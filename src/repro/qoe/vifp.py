"""Pixel-domain Visual Information Fidelity (Sheikh & Bovik 2006).

VIFp models the reference image as the output of a natural-scene
Gaussian source and the distorted image as that source passed through
a lossy channel; the metric is the ratio of the mutual information the
distorted image preserves about the source to the information in the
reference itself.  We implement the standard multi-scale pixel-domain
approximation (four scales, Gaussian windows, variances floored by the
HVS noise ``sigma_nsq``), matching VQMT's ``VIFp`` output range
[0, 1]-ish (slightly above 1 is possible for contrast-enhanced input).

:func:`vifp_stack` scores a whole ``(T, H, W)`` stack of frame pairs,
building each pyramid level and its windowed statistics once for the
entire stack; :func:`vifp` is the single-frame wrapper.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError
from .kernels import (
    as_frame_stack,
    block_frames,
    gaussian_blur_stack,
    window_stats,
)

#: Variance of the additive HVS model noise (standard value).
SIGMA_NSQ = 2.0

#: Number of dyadic scales.
SCALES = 4


def _vifp_block(ref: np.ndarray, dis: np.ndarray) -> np.ndarray:
    """VIFp series of one (already validated) block of frame pairs."""
    x = ref.astype(np.float64)
    y = dis.astype(np.float64)
    frames = ref.shape[0]

    numerator = np.zeros(frames, dtype=np.float64)
    denominator = np.zeros(frames, dtype=np.float64)
    for scale in range(1, SCALES + 1):
        # Scale-dependent window as in the reference implementation.
        window_size = (2 ** (SCALES - scale + 1)) + 1
        sigma = window_size / 5.0
        if scale > 1:
            x = np.ascontiguousarray(gaussian_blur_stack(x, sigma)[:, ::2, ::2])
            y = np.ascontiguousarray(gaussian_blur_stack(y, sigma)[:, ::2, ::2])
            if min(x.shape[1:]) < 4:
                break

        _mu_x, _mu_y, sigma_xx, sigma_yy, sigma_xy = window_stats(x, y, sigma)

        # Channel gain g and residual variance sv of the distortion
        # model y = g*x + v.
        g = sigma_xy / (sigma_xx + 1e-10)
        sv = sigma_yy - g * sigma_xy
        g = np.where(sigma_xx < 1e-10, 0.0, g)
        sv = np.where(sigma_xx < 1e-10, sigma_yy, sv)
        sv = np.where(g < 0, sigma_yy, sv)
        g = np.maximum(g, 0.0)
        sv = np.maximum(sv, 1e-10)

        numerator += np.sum(
            np.log10(1.0 + (g * g) * sigma_xx / (sv + SIGMA_NSQ)), axis=(1, 2)
        )
        denominator += np.sum(np.log10(1.0 + sigma_xx / SIGMA_NSQ), axis=(1, 2))

    # A flat reference carries no information; identical frames
    # preserve all of it by convention.
    informative = denominator > 0.0
    values = np.where(
        informative, numerator / np.where(informative, denominator, 1.0), 0.0
    )
    for index in np.flatnonzero(~informative):
        if np.allclose(ref[index], dis[index]):
            values[index] = 1.0
    return values


def vifp_stack(reference: np.ndarray, distorted: np.ndarray) -> np.ndarray:
    """Per-frame VIFp series of two ``(T, H, W)`` frame stacks.

    Bit-compatible with calling :func:`vifp` on each frame pair: the
    dyadic pyramid and windowed statistics are computed across frames
    (in cache-sized blocks) but every frame slice matches the
    per-frame pipeline.

    Raises:
        AnalysisError: On shape mismatch or frames too small for the
            four-scale pyramid (needs at least ~32 px per side).
    """
    ref = as_frame_stack(reference)
    dis = as_frame_stack(distorted)
    if ref.shape != dis.shape:
        raise AnalysisError(f"shape mismatch: {ref.shape} vs {dis.shape}")
    if ref.shape[0] == 0 or min(ref.shape[1:]) < 32:
        raise AnalysisError("VIFp needs 2-D frames of at least 32x32")
    step = block_frames(ref.shape[1:])
    if len(ref) <= step:
        return _vifp_block(ref, dis)
    return np.concatenate(
        [
            _vifp_block(ref[i : i + step], dis[i : i + step])
            for i in range(0, len(ref), step)
        ]
    )


def vifp(reference: np.ndarray, distorted: np.ndarray) -> float:
    """Pixel-domain VIF between two luma frames.

    Raises:
        AnalysisError: On shape mismatch or frames too small for the
            four-scale pyramid (needs at least ~32 px per side).
    """
    if reference.shape != distorted.shape:
        raise AnalysisError(
            f"shape mismatch: {reference.shape} vs {distorted.shape}"
        )
    if reference.ndim != 2:
        raise AnalysisError("VIFp needs 2-D frames of at least 32x32")
    return float(vifp_stack(reference[None], distorted[None])[0])
