"""Pixel-domain Visual Information Fidelity (Sheikh & Bovik 2006).

VIFp models the reference image as the output of a natural-scene
Gaussian source and the distorted image as that source passed through
a lossy channel; the metric is the ratio of the mutual information the
distorted image preserves about the source to the information in the
reference itself.  We implement the standard multi-scale pixel-domain
approximation (four scales, Gaussian windows, variances floored by the
HVS noise ``sigma_nsq``), matching VQMT's ``VIFp`` output range
[0, 1]-ish (slightly above 1 is possible for contrast-enhanced input).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..errors import AnalysisError

#: Variance of the additive HVS model noise (standard value).
SIGMA_NSQ = 2.0

#: Number of dyadic scales.
SCALES = 4


def _filter_and_stats(
    x: np.ndarray, y: np.ndarray, sigma: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Windowed variances/covariance of the two planes."""
    mu_x = ndimage.gaussian_filter(x, sigma, mode="reflect")
    mu_y = ndimage.gaussian_filter(y, sigma, mode="reflect")
    sigma_xx = ndimage.gaussian_filter(x * x, sigma, mode="reflect") - mu_x * mu_x
    sigma_yy = ndimage.gaussian_filter(y * y, sigma, mode="reflect") - mu_y * mu_y
    sigma_xy = ndimage.gaussian_filter(x * y, sigma, mode="reflect") - mu_x * mu_y
    return (
        np.maximum(sigma_xx, 0.0),
        np.maximum(sigma_yy, 0.0),
        sigma_xy,
    )


def vifp(reference: np.ndarray, distorted: np.ndarray) -> float:
    """Pixel-domain VIF between two luma frames.

    Raises:
        AnalysisError: On shape mismatch or frames too small for the
            four-scale pyramid (needs at least ~32 px per side).
    """
    if reference.shape != distorted.shape:
        raise AnalysisError(
            f"shape mismatch: {reference.shape} vs {distorted.shape}"
        )
    if reference.ndim != 2 or min(reference.shape) < 32:
        raise AnalysisError("VIFp needs 2-D frames of at least 32x32")

    x = reference.astype(np.float64)
    y = distorted.astype(np.float64)

    numerator = 0.0
    denominator = 0.0
    for scale in range(1, SCALES + 1):
        # Scale-dependent window as in the reference implementation.
        window_size = (2 ** (SCALES - scale + 1)) + 1
        sigma = window_size / 5.0
        if scale > 1:
            x = ndimage.gaussian_filter(x, sigma, mode="reflect")[::2, ::2]
            y = ndimage.gaussian_filter(y, sigma, mode="reflect")[::2, ::2]
            if min(x.shape) < 4:
                break

        sigma_xx, sigma_yy, sigma_xy = _filter_and_stats(x, y, sigma)

        # Channel gain g and residual variance sv of the distortion
        # model y = g*x + v.
        g = sigma_xy / (sigma_xx + 1e-10)
        sv = sigma_yy - g * sigma_xy
        g = np.where(sigma_xx < 1e-10, 0.0, g)
        sv = np.where(sigma_xx < 1e-10, sigma_yy, sv)
        sv = np.where(g < 0, sigma_yy, sv)
        g = np.maximum(g, 0.0)
        sv = np.maximum(sv, 1e-10)

        numerator += float(
            np.sum(np.log10(1.0 + (g * g) * sigma_xx / (sv + SIGMA_NSQ)))
        )
        denominator += float(np.sum(np.log10(1.0 + sigma_xx / SIGMA_NSQ)))

    if denominator <= 0.0:
        # A flat reference carries no information; identical frames
        # preserve all of it by convention.
        return 1.0 if np.allclose(reference, distorted) else 0.0
    return numerator / denominator
