"""Structural Similarity Index (Wang, Bovik, Sheikh & Simoncelli 2004).

The standard single-scale SSIM with an 11x11 Gaussian window
(sigma = 1.5) and the usual stabilising constants, as computed by VQMT.
Returns the mean SSIM map value in [-1, 1] (typically [0, 1] for
video content).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..errors import AnalysisError

#: Stabilising constants from the SSIM paper for 8-bit dynamic range.
_K1, _K2 = 0.01, 0.03
_L = 255.0
C1 = (_K1 * _L) ** 2
C2 = (_K2 * _L) ** 2

#: Gaussian window parameter used by the reference implementation.
WINDOW_SIGMA = 1.5


def _local_mean(plane: np.ndarray) -> np.ndarray:
    return ndimage.gaussian_filter(plane, sigma=WINDOW_SIGMA, mode="reflect")


def ssim_map(reference: np.ndarray, distorted: np.ndarray) -> np.ndarray:
    """The per-pixel SSIM index map."""
    if reference.shape != distorted.shape:
        raise AnalysisError(
            f"shape mismatch: {reference.shape} vs {distorted.shape}"
        )
    if reference.ndim != 2 or min(reference.shape) < 8:
        raise AnalysisError("SSIM needs 2-D frames of at least 8x8")
    x = reference.astype(np.float64)
    y = distorted.astype(np.float64)

    mu_x = _local_mean(x)
    mu_y = _local_mean(y)
    mu_xx = mu_x * mu_x
    mu_yy = mu_y * mu_y
    mu_xy = mu_x * mu_y

    sigma_xx = _local_mean(x * x) - mu_xx
    sigma_yy = _local_mean(y * y) - mu_yy
    sigma_xy = _local_mean(x * y) - mu_xy

    numerator = (2.0 * mu_xy + C1) * (2.0 * sigma_xy + C2)
    denominator = (mu_xx + mu_yy + C1) * (sigma_xx + sigma_yy + C2)
    return numerator / denominator


def ssim(reference: np.ndarray, distorted: np.ndarray) -> float:
    """Mean SSIM between two luma frames."""
    return float(np.mean(ssim_map(reference, distorted)))
