"""Structural Similarity Index (Wang, Bovik, Sheikh & Simoncelli 2004).

The standard single-scale SSIM with an 11x11 Gaussian window
(sigma = 1.5) and the usual stabilising constants, as computed by VQMT.
Returns the mean SSIM map value in [-1, 1] (typically [0, 1] for
video content).

:func:`ssim_stack` scores a whole ``(T, H, W)`` stack of frame pairs
in one vectorized pass over shared windowed statistics;
:func:`ssim`/:func:`ssim_map` are the single-frame wrappers.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError
from .kernels import as_frame_stack, block_frames, window_stats

#: Stabilising constants from the SSIM paper for 8-bit dynamic range.
_K1, _K2 = 0.01, 0.03
_L = 255.0
C1 = (_K1 * _L) ** 2
C2 = (_K2 * _L) ** 2

#: Gaussian window parameter used by the reference implementation.
WINDOW_SIGMA = 1.5


def ssim_map_stack(reference: np.ndarray, distorted: np.ndarray) -> np.ndarray:
    """Per-pixel SSIM index maps of a ``(T, H, W)`` stack of pairs.

    Bit-compatible with computing :func:`ssim_map` per frame.

    Raises:
        AnalysisError: On shape mismatch or frames smaller than 8x8.
    """
    ref = as_frame_stack(reference)
    dis = as_frame_stack(distorted)
    if ref.shape != dis.shape:
        raise AnalysisError(f"shape mismatch: {ref.shape} vs {dis.shape}")
    if ref.shape[0] == 0 or min(ref.shape[1:]) < 8:
        raise AnalysisError("SSIM needs 2-D frames of at least 8x8")
    x = ref.astype(np.float64)
    y = dis.astype(np.float64)

    mu_x, mu_y, sigma_xx, sigma_yy, sigma_xy = window_stats(
        x, y, WINDOW_SIGMA, clamp=False
    )
    mu_xx = mu_x * mu_x
    mu_yy = mu_y * mu_y
    mu_xy = mu_x * mu_y

    numerator = (2.0 * mu_xy + C1) * (2.0 * sigma_xy + C2)
    denominator = (mu_xx + mu_yy + C1) * (sigma_xx + sigma_yy + C2)
    return numerator / denominator


def ssim_stack(reference: np.ndarray, distorted: np.ndarray) -> np.ndarray:
    """Per-frame mean-SSIM series of two ``(T, H, W)`` frame stacks.

    Maps are computed in cache-sized blocks of frames; the values are
    bit-compatible with per-frame :func:`ssim` calls either way.
    """
    ref = as_frame_stack(reference)
    dis = as_frame_stack(distorted)
    step = block_frames(ref.shape[1:])
    if len(ref) <= step:
        return np.mean(ssim_map_stack(ref, dis), axis=(1, 2))
    if ref.shape != dis.shape:
        raise AnalysisError(f"shape mismatch: {ref.shape} vs {dis.shape}")
    return np.concatenate(
        [
            np.mean(
                ssim_map_stack(ref[i : i + step], dis[i : i + step]),
                axis=(1, 2),
            )
            for i in range(0, len(ref), step)
        ]
    )


def ssim_map(reference: np.ndarray, distorted: np.ndarray) -> np.ndarray:
    """The per-pixel SSIM index map."""
    if reference.shape != distorted.shape:
        raise AnalysisError(
            f"shape mismatch: {reference.shape} vs {distorted.shape}"
        )
    if reference.ndim != 2:
        raise AnalysisError("SSIM needs 2-D frames of at least 8x8")
    return ssim_map_stack(reference[None], distorted[None])[0]


def ssim(reference: np.ndarray, distorted: np.ndarray) -> float:
    """Mean SSIM between two luma frames."""
    return float(np.mean(ssim_map(reference, distorted)))
