"""Peak Signal-to-Noise Ratio.

The most basic of the three video metrics the paper reports.  Defined
as ``10 * log10(MAX^2 / MSE)`` with ``MAX = 255`` for 8-bit luma.
Identical frames have infinite PSNR; we cap at a configurable ceiling
(VQMT caps similarly) so averages over frames stay finite.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError

#: Cap applied to the PSNR of (nearly) identical frames.
PSNR_CAP_DB = 60.0

#: Peak value of 8-bit luma.
PEAK = 255.0


def psnr(reference: np.ndarray, distorted: np.ndarray, cap_db: float = PSNR_CAP_DB) -> float:
    """PSNR of ``distorted`` against ``reference`` in decibels.

    Args:
        reference: Ground-truth luma frame.
        distorted: Received/recorded luma frame, same shape.
        cap_db: Value returned for (near-)identical frames.

    Raises:
        AnalysisError: On shape mismatch or empty frames.
    """
    if reference.shape != distorted.shape:
        raise AnalysisError(
            f"shape mismatch: {reference.shape} vs {distorted.shape}"
        )
    if reference.size == 0:
        raise AnalysisError("cannot compute PSNR of empty frames")
    ref = reference.astype(np.float64)
    dis = distorted.astype(np.float64)
    mse = float(np.mean((ref - dis) ** 2))
    if mse <= 0.0:
        return cap_db
    value = 10.0 * np.log10(PEAK * PEAK / mse)
    return float(min(value, cap_db))
