"""Peak Signal-to-Noise Ratio.

The most basic of the three video metrics the paper reports.  Defined
as ``10 * log10(MAX^2 / MSE)`` with ``MAX = 255`` for 8-bit luma.
Identical frames have infinite PSNR; we cap at a configurable ceiling
(VQMT caps similarly) so averages over frames stay finite.

:func:`psnr_stack` scores a whole ``(T, H, W)`` stack of frame pairs
in one vectorized pass; :func:`psnr` is the single-frame wrapper.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError
from .kernels import as_frame_stack

#: Cap applied to the PSNR of (nearly) identical frames.
PSNR_CAP_DB = 60.0

#: Peak value of 8-bit luma.
PEAK = 255.0


def psnr_stack(
    reference: np.ndarray,
    distorted: np.ndarray,
    cap_db: float = PSNR_CAP_DB,
) -> np.ndarray:
    """Per-frame PSNR series of two ``(T, H, W)`` frame stacks.

    Bit-compatible with calling :func:`psnr` on each frame pair.

    Raises:
        AnalysisError: On shape mismatch or empty frames.
    """
    ref = as_frame_stack(reference)
    dis = as_frame_stack(distorted)
    if ref.shape != dis.shape:
        raise AnalysisError(f"shape mismatch: {ref.shape} vs {dis.shape}")
    if ref.size == 0:
        raise AnalysisError("cannot compute PSNR of empty frames")
    diff = ref.astype(np.float64) - dis.astype(np.float64)
    mse = np.mean(diff * diff, axis=(1, 2))
    safe_mse = np.where(mse > 0.0, mse, 1.0)
    values = 10.0 * np.log10(PEAK * PEAK / safe_mse)
    return np.where(mse > 0.0, np.minimum(values, cap_db), cap_db)


def psnr(reference: np.ndarray, distorted: np.ndarray, cap_db: float = PSNR_CAP_DB) -> float:
    """PSNR of ``distorted`` against ``reference`` in decibels.

    Args:
        reference: Ground-truth luma frame.
        distorted: Received/recorded luma frame, same shape.
        cap_db: Value returned for (near-)identical frames.

    Raises:
        AnalysisError: On shape mismatch or empty frames.
    """
    if reference.shape != distorted.shape:
        raise AnalysisError(
            f"shape mismatch: {reference.shape} vs {distorted.shape}"
        )
    return float(psnr_stack(reference[None], distorted[None], cap_db)[0])
