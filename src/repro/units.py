"""Unit helpers used throughout the library.

The simulator's canonical units are **seconds** for time, **bits per
second** for rates and **bytes** for sizes.  These helpers exist so that
experiment code can be written in the units the paper uses (milliseconds,
Kbps/Mbps, MB/GB) without sprinkling magic constants around.

>>> mbps(1.5)
1500000.0
>>> ms(20)
0.02
>>> to_ms(0.02)
20.0
"""

from __future__ import annotations

from .errors import ConfigurationError

#: Number of bits in one byte, used when converting packet sizes to rates.
BITS_PER_BYTE = 8

#: Speed of light in an optical fibre, metres per second.  The standard
#: figure of ~2/3 of c in vacuum; used by the geographic latency model.
FIBER_LIGHT_SPEED_M_PER_S = 2.0e8


def kbps(value: float) -> float:
    """Convert kilobits/second to bits/second."""
    return float(value) * 1e3


def mbps(value: float) -> float:
    """Convert megabits/second to bits/second."""
    return float(value) * 1e6


def gbps(value: float) -> float:
    """Convert gigabits/second to bits/second."""
    return float(value) * 1e9


def to_kbps(bits_per_second: float) -> float:
    """Convert bits/second to kilobits/second."""
    return float(bits_per_second) / 1e3


def to_mbps(bits_per_second: float) -> float:
    """Convert bits/second to megabits/second."""
    return float(bits_per_second) / 1e6


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return float(value) / 1e3


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return float(value) / 1e6


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return float(value) * 60.0


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return float(value) * 3600.0


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return float(seconds) * 1e3


def kib(value: float) -> int:
    """Convert KiB to bytes."""
    return int(float(value) * 1024)


def mib(value: float) -> int:
    """Convert MiB to bytes."""
    return int(float(value) * 1024 * 1024)


def mb(value: float) -> int:
    """Convert decimal megabytes to bytes (as used for data caps)."""
    return int(float(value) * 1e6)


def gb(value: float) -> int:
    """Convert decimal gigabytes to bytes."""
    return int(float(value) * 1e9)


def to_mb(num_bytes: float) -> float:
    """Convert bytes to decimal megabytes."""
    return float(num_bytes) / 1e6


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a byte count to bits."""
    return float(num_bytes) * BITS_PER_BYTE


def transmission_delay(num_bytes: int, rate_bps: float) -> float:
    """Time in seconds to serialise ``num_bytes`` onto a ``rate_bps`` link.

    Raises :class:`~repro.errors.ConfigurationError` for non-positive
    rates, since an unpowered link cannot transmit.
    """
    if rate_bps <= 0:
        raise ConfigurationError(f"link rate must be positive, got {rate_bps}")
    return bytes_to_bits(num_bytes) / float(rate_bps)


def rate_from_bytes(num_bytes: float, duration_s: float) -> float:
    """Average rate in bits/second of ``num_bytes`` over ``duration_s``."""
    if duration_s <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration_s}")
    return bytes_to_bits(num_bytes) / float(duration_s)
