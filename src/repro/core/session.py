"""Meeting-session orchestration: one controlled, instrumented session.

A :class:`MeetingSession` takes a platform, a set of clients and a
:class:`SessionConfig` describing the scenario, and drives the whole
thing on the simulator: staggered joins, media feeds into loopback
devices, streamers, receivers with feedback, desktop recorders,
endpoint discovery and RTT probes, then collects everything into a
:class:`SessionArtifacts` bundle the experiments post-process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..clients.client import BaseClient, MEDIA_PORT
from ..clients.recorder import DesktopRecorder
from ..clients.streamer import AudioStreamer, ModelVideoStreamer, VideoStreamer
from ..errors import ConfigurationError, MeasurementError, SessionError
from ..media.audio import SpeechLikeSource
from ..media.audio_codec import AudioCodecConfig
from ..media.feeds import FlashFeed, HighMotionFeed, LowMotionFeed, StaticFeed
from ..media.frames import CachedFrames, FrameSource, FrameSpec
from ..media.padding import PaddedSource
from ..media.video_codec import VideoCodecConfig
from ..net.capture import Capture, Direction
from ..net.dynamics import (
    ConditionTimeline,
    PhaseWindow,
    arm_timeline,
    resolve_arm_start,
)
from ..net.packet import PacketKind
from ..net.shaper import ShaperStats
from ..platforms.base import (
    ClientBinding,
    PlatformModel,
    SessionWiring,
    StreamLayer,
)
from ..platforms.ratecontrol import RateContext
from .lag import LagMeasurement, measure_streaming_lag
from .probing import Prober
from .results import RateSummary

#: Media packet kinds, used when computing L7 data rates.
MEDIA_KINDS = (PacketKind.MEDIA_VIDEO, PacketKind.MEDIA_AUDIO)


@dataclass
class SessionConfig:
    """Scenario description for one session.

    Attributes:
        duration_s: Length of the media-streaming phase.
        settle_s: Time allotted for joins/workflows before media.
        grace_s: Extra simulated time after media stops (drains relays).
        feed: Host feed type: ``"low"``, ``"high"``, ``"flash"``,
            ``"static"`` or ``None`` (no video).
        content_spec: Geometry of the *content* (pre-padding) feed.
        pad_fraction: Fig. 13 padding around QoE feeds (0 disables).
        audio: Whether the host streams audio.
        use_codec: Real codec (True) or size-modelled traffic (False).
        record_video: Receivers decode + desktop-record the host video.
        record_audio: Receivers decode the host audio for MOS scoring.
        probes: Run endpoint discovery + RTT probing.
        probe_count / probe_interval_s: The tcpping loop parameters.
        device_profile: Rate-context device class for the session.
        session_index: Index within an experiment (drives per-session
            platform randomness).
        feed_seed: Seed for the synthetic feeds.
        gop_size: Codec keyframe spacing.
        codec_batch: Force the codec batching engine on (True) or off
            (False) for this session's codecs and decoders; ``None``
            follows :data:`repro.media.batching.BATCH_DEFAULT`.
            Batching is bit-identical either way -- this knob exists
            for the equivalence tests and for debugging.
        defer_decode: Force deferred receiver decode on (True) or off
            (False) for recorded video flows; ``None`` follows
            :data:`repro.clients.receiver.DEFER_DECODE_DEFAULT`.
            Deferral parks delivered frames and replays the batched
            decode when the recording is read -- bit-identical either
            way (same knob contract as ``codec_batch``).
        flash_period_s: Flash cadence for lag feeds.
        timelines: Optional per-client condition timelines (client name
            -> :class:`~repro.net.dynamics.ConditionTimeline`).  Each is
            armed relative to the media-window start and mutates that
            client's access link as the session runs; ``None`` (or an
            empty mapping) keeps every link static.
    """

    duration_s: float = 30.0
    settle_s: float = 2.0
    grace_s: float = 2.0
    feed: Optional[str] = "low"
    content_spec: FrameSpec = field(default_factory=lambda: FrameSpec(192, 144, 15))
    pad_fraction: float = 0.15
    audio: bool = False
    use_codec: bool = True
    record_video: bool = False
    record_audio: bool = False
    probes: bool = True
    probe_count: int = 30
    probe_interval_s: float = 0.5
    device_profile: str = "vm"
    session_index: int = 0
    feed_seed: int = 0
    gop_size: int = 30
    codec_batch: Optional[bool] = None
    defer_decode: Optional[bool] = None
    flash_period_s: float = 2.0
    normalize_wire_rates: Optional[bool] = None
    timelines: Optional[Dict[str, ConditionTimeline]] = None

    @property
    def wire_normalized(self) -> bool:
        """Whether packet sizes are scaled to paper-absolute rates.

        Defaults to on for content feeds (so captures report Mbps
        comparable to Figures 15/19) and off for the flash feed, whose
        lag detector depends on raw blank-frame packet sizes.
        """
        if self.normalize_wire_rates is not None:
            return self.normalize_wire_rates
        return self.feed not in (None, "flash")

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise SessionError("duration_s must be positive")
        if self.settle_s < 0:
            raise SessionError(f"settle_s must be >= 0, got {self.settle_s}")
        if self.grace_s < 0:
            raise SessionError(f"grace_s must be >= 0, got {self.grace_s}")
        if self.probe_interval_s < 0:
            raise SessionError(
                f"probe_interval_s must be >= 0, got {self.probe_interval_s}"
            )
        if self.probe_count <= 0:
            raise SessionError(
                f"probe_count must be positive, got {self.probe_count}"
            )
        if self.feed not in (None, "low", "high", "flash", "static"):
            raise SessionError(f"unknown feed type: {self.feed!r}")
        for client_name, timeline in (self.timelines or {}).items():
            if not isinstance(timeline, ConditionTimeline):
                raise SessionError(
                    f"timeline for {client_name!r} must be a "
                    f"ConditionTimeline, got {type(timeline).__name__}"
                )
            if timeline.start_offset_s < -self.settle_s:
                raise SessionError(
                    f"timeline for {client_name!r} starts "
                    f"{timeline.start_offset_s}s before the media window, "
                    f"beyond the {self.settle_s}s settle period"
                )
            # A plan outliving the session would leave its boundary
            # events queued on the (shared) simulator, to fire during
            # whatever session runs next on the same testbed.  The
            # tolerance absorbs one-ulp rounding of offset arithmetic
            # (a plan spanning settle+media+grace exactly can overshoot
            # the sum by rounding for non-dyadic durations).
            end_offset = timeline.start_offset_s + timeline.total_duration_s
            limit = self.duration_s + self.grace_s
            if end_offset > limit + 1e-9 * max(1.0, abs(limit)):
                raise SessionError(
                    f"timeline for {client_name!r} runs {end_offset}s past "
                    f"the media-window start, beyond the session's "
                    f"{self.duration_s}s media + {self.grace_s}s grace"
                )

    @property
    def motion(self) -> str:
        """Rate-context motion class implied by the feed."""
        return "high" if self.feed == "high" else "low"


def make_feed(config: SessionConfig) -> Optional[FrameSource]:
    """Instantiate the host's content feed for a config."""
    spec = config.content_spec
    seed = config.feed_seed
    if config.feed is None:
        return None
    if config.feed == "low":
        return LowMotionFeed(spec, seed=seed)
    if config.feed == "high":
        return HighMotionFeed(spec, seed=seed)
    if config.feed == "static":
        return StaticFeed(spec, seed=seed)
    return FlashFeed(spec, seed=seed, period_s=config.flash_period_s)


@dataclass
class SessionArtifacts:
    """Everything collected from one session run."""

    config: SessionConfig
    wiring: SessionWiring
    host_name: str
    clients: Dict[str, BaseClient]
    captures: Dict[str, Capture]
    recorders: Dict[str, DesktopRecorder] = field(default_factory=dict)
    probers: Dict[str, Prober] = field(default_factory=dict)
    streamers: Dict[str, object] = field(default_factory=dict)
    padded_feed: Optional[PaddedSource] = None
    content_feed: Optional[FrameSource] = None
    audio_source: Optional[SpeechLikeSource] = None
    media_window: tuple[float, float] = (0.0, 0.0)
    condition_phases: Dict[str, List[PhaseWindow]] = field(default_factory=dict)
    shaper_phase_stats: Dict[str, Dict[str, "ShaperStats"]] = field(
        default_factory=dict
    )
    video_decoders: Dict[str, Dict[str, object]] = field(default_factory=dict)
    audio_decoders: Dict[str, Dict[str, object]] = field(default_factory=dict)
    audio_frame_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def recorded_audio(self, client_name: str, flow_id: str):
        """Assembled (concealed) waveform a client decoded for a flow."""
        decoder = self.audio_decoders.get(client_name, {}).get(flow_id)
        if decoder is None:
            raise MeasurementError(
                f"{client_name} did not decode audio flow {flow_id!r}"
            )
        expected = self.audio_frame_counts.get(client_name, {}).get(flow_id, 0)
        return decoder.waveform(expected if expected > 0 else None)

    def host_video_decoder(self, client_name: str):
        """A receiver's decoder of the host's HIGH video flow."""
        flow = self.wiring.video_flow(self.host_name, StreamLayer.HIGH)
        decoder = self.video_decoders.get(client_name, {}).get(flow)
        if decoder is None:
            raise MeasurementError(
                f"{client_name} did not decode the host video"
            )
        return decoder

    # ------------------------------------------------------------- #
    # Lag.
    # ------------------------------------------------------------- #

    def lag_measurements(self, receiver: str) -> List[LagMeasurement]:
        """Matched flash lags between the host and one receiver."""
        return measure_streaming_lag(
            self.captures[self.host_name], self.captures[receiver]
        )

    # ------------------------------------------------------------- #
    # Traffic.
    # ------------------------------------------------------------- #

    def _media_rate(self, capture: Capture, direction: Direction) -> float:
        start, end = self.media_window
        records = [
            r
            for r in capture.filter(direction=direction, kinds=MEDIA_KINDS)
            if start <= r.timestamp <= end
        ]
        if not records:
            raise MeasurementError("no media packets in the rate window")
        total = sum(r.payload_bytes for r in records)
        return total * 8.0 / (end - start)

    def rate_summary(self) -> RateSummary:
        """Host upload and per-receiver download L7 rates (Fig. 15)."""
        upload = self._media_rate(self.captures[self.host_name], Direction.OUT)
        downloads = {}
        for name, capture in self.captures.items():
            if name == self.host_name:
                continue
            downloads[name] = self._media_rate(capture, Direction.IN)
        return RateSummary(upload_bps=upload, download_bps_by_client=downloads)

    def download_rate_bps(self, client_name: str) -> float:
        """One client's media download rate."""
        return self._media_rate(self.captures[client_name], Direction.IN)

    # ------------------------------------------------------------- #
    # Per-phase segmentation (condition timelines).
    # ------------------------------------------------------------- #

    def phase_windows(self, client_name: str) -> List[PhaseWindow]:
        """A client's timeline windows clipped to the media window.

        Raises :class:`~repro.errors.MeasurementError` when the session
        armed no timeline for the client.
        """
        windows = self.condition_phases.get(client_name)
        if not windows:
            raise MeasurementError(
                f"{client_name} had no condition timeline in this session"
            )
        start, end = self.media_window
        clipped = [w.clipped(start, end) for w in windows]
        return [w for w in clipped if w is not None]

    def phase_download_rates_bps(self, client_name: str) -> Dict[str, float]:
        """Media download rate per timeline phase (phase name -> bps).

        Windows sharing a name (a phase re-entered around an impulse)
        pool their bytes and durations; a phase entirely starved of
        packets reports 0 rather than raising, because "the cap choked
        the stream to nothing" is a result, not a measurement failure.
        """
        capture = self.captures[client_name]
        totals: Dict[str, float] = {}
        durations: Dict[str, float] = {}
        for window in self.phase_windows(client_name):
            payload = capture.payload_bytes_between(
                Direction.IN, window.start_s, window.end_s, kinds=MEDIA_KINDS
            )
            totals[window.name] = totals.get(window.name, 0.0) + payload
            durations[window.name] = (
                durations.get(window.name, 0.0) + window.duration_s
            )
        return {
            name: totals[name] * 8.0 / durations[name]
            for name in totals
        }

    def phase_freeze_fractions(self, client_name: str) -> Dict[str, float]:
        """Fraction of recorder ticks showing a frozen frame, per phase.

        The freeze fraction is the per-phase mean of the recorder's
        boolean stale-flag series, so it shares the segmentation rules
        (right-open windows, name pooling, NaN for empty phases) with
        the per-phase QoE pipeline.
        """
        from .postprocess import segment_series_by_phase

        recorder = self.recorders.get(client_name)
        if recorder is None:
            raise MeasurementError(f"{client_name} recorded no video")
        segmented = segment_series_by_phase(
            np.asarray(recorder.stale_flags, dtype=np.float64),
            recorder.timestamps,
            self.phase_windows(client_name),
        )
        return {name: mean for name, (_count, mean) in segmented.items()}

    def phase_shaper_stats(self, client_name: str) -> Dict[str, ShaperStats]:
        """Ingress-shaper counters by phase, scoped to *this* session.

        Snapshotted (as deltas against the pre-session counters) when
        the session ends, so artifacts stay stable and per-session even
        though the underlying link -- and its lifetime counters -- are
        shared across every session run on the testbed.
        """
        stats = self.shaper_phase_stats.get(client_name)
        if stats is None:
            raise MeasurementError(
                f"{client_name} had no condition timeline in this session"
            )
        return stats

    # ------------------------------------------------------------- #
    # Probing / endpoints.
    # ------------------------------------------------------------- #

    def mean_rtt_ms(self, client_name: str) -> float:
        """Mean probed RTT from one client to its endpoint(s)."""
        prober = self.probers.get(client_name)
        if prober is None:
            raise MeasurementError(f"{client_name} ran no probes")
        results = [r for r in prober.results() if r.received > 0]
        if not results:
            raise MeasurementError(f"{client_name}: no probe replies")
        return float(np.mean([r.mean_rtt_ms() for r in results]))

    def discovered_endpoints(self, client_name: str):
        """Endpoints a client's monitor discovered in its capture."""
        return self.captures[client_name].remote_endpoints(media_only=True)


class MeetingSession:
    """Runs one session end to end on the simulator."""

    def __init__(
        self,
        platform: PlatformModel,
        clients: List[BaseClient],
        host_name: str,
        config: SessionConfig,
        extra_sender_names: Optional[List[str]] = None,
    ) -> None:
        if len(clients) < 2:
            raise SessionError("a session needs at least two clients")
        self.platform = platform
        self.clients = {c.name: c for c in clients}
        if host_name not in self.clients:
            raise SessionError(f"host {host_name!r} not among clients")
        self.host_name = host_name
        self.config = config
        self.extra_sender_names = list(extra_sender_names or [])
        self.network = clients[0].host.network

    # ------------------------------------------------------------- #

    def run(self) -> SessionArtifacts:
        """Execute the session and return its artifacts."""
        config = self.config
        simulator = self.network.simulator
        start_time = simulator.now

        # Validate timelines before any side effect: a failure past
        # this point would leave capture/join/media events queued on
        # the shared simulator, to corrupt the next session run on it.
        self._validate_timelines(start_time + config.settle_s)

        context = RateContext(
            num_participants=len(self.clients),
            motion=config.motion,
            device=config.device_profile,
            session_index=config.session_index,
        )
        bindings = [
            ClientBinding(c.name, c.host, MEDIA_PORT)
            for c in self.clients.values()
        ]
        views = {name: c.view for name, c in self.clients.items()}
        wiring = self.platform.create_session(
            bindings, self.host_name, context, views
        )

        captures = {
            name: client.start_capture()
            for name, client in self.clients.items()
        }

        # Staggered joins within the settle window.
        for index, client in enumerate(self.clients.values()):
            simulator.schedule(0.05 + 0.1 * index, client.join, wiring)

        artifacts = SessionArtifacts(
            config=config,
            wiring=wiring,
            host_name=self.host_name,
            clients=dict(self.clients),
            captures=captures,
        )

        self._setup_media(wiring, context, artifacts)
        self._setup_receivers(wiring, artifacts)
        if config.probes:
            self._setup_probing(wiring, artifacts)

        media_start = start_time + config.settle_s
        artifacts.media_window = (media_start, media_start + config.duration_s)
        self._arm_timelines(artifacts, media_start)
        until = start_time + config.settle_s + config.duration_s + config.grace_s
        # Timeline plans may overshoot the natural window by rounding
        # ulps; stretch the run so every restore event fires in-session
        # rather than lingering into the next run on this simulator.
        for windows in artifacts.condition_phases.values():
            until = max(until, windows[-1].end_s)
        simulator.run(until=until)

        self._snapshot_shaper_stats(artifacts)
        for client in self.clients.values():
            client.host.stop_captures()
            client.receiver.stop_feedback_loop()
        for prober in artifacts.probers.values():
            prober.finalize()
        wiring.close()
        for name, client in self.clients.items():
            video, audio, counts = client.receiver.snapshot()
            artifacts.video_decoders[name] = video
            artifacts.audio_decoders[name] = audio
            artifacts.audio_frame_counts[name] = counts
            client.leave()
        return artifacts

    # ------------------------------------------------------------- #
    # Network dynamics.
    # ------------------------------------------------------------- #

    def _validate_timelines(self, media_start: float) -> None:
        """Reject bad timeline wiring before the session schedules events."""
        for client_name, timeline in (self.config.timelines or {}).items():
            if client_name not in self.clients:
                raise SessionError(
                    f"timeline targets {client_name!r}, not in this session"
                )
            try:
                resolve_arm_start(
                    self.network.simulator.now, media_start, timeline
                )
            except ConfigurationError as exc:
                raise SessionError(str(exc)) from exc

    def _arm_timelines(
        self, artifacts: SessionArtifacts, media_start: float
    ) -> None:
        """Schedule every configured condition timeline on the simulator.

        Timelines are armed relative to the media window (negative
        offsets reach back into settle, e.g. a cap that must hold while
        clients join); the compiled windows are recorded on the
        artifacts so analyses can segment captures/recordings by phase.
        """
        self._shaper_baselines: Dict[str, Dict[str, ShaperStats]] = {}
        for client_name, timeline in (self.config.timelines or {}).items():
            client = self.clients[client_name]
            artifacts.condition_phases[client_name] = arm_timeline(
                self.network.simulator,
                client.host.link,
                timeline,
                media_start,
            )
            # The link (and its lifetime shaper counters) outlives this
            # session; remember where the counters stand so the session
            # can report its own per-phase deltas.
            self._shaper_baselines[client_name] = (
                client.host.link.shaper_phase_stats()
            )

    def _snapshot_shaper_stats(self, artifacts: SessionArtifacts) -> None:
        """Freeze this session's per-phase shaper deltas into artifacts."""
        for client_name, baseline in self._shaper_baselines.items():
            current = self.clients[client_name].host.link.shaper_phase_stats()
            deltas = {
                name: ShaperStats.delta(stats, baseline.get(name))
                for name, stats in current.items()
            }
            artifacts.shaper_phase_stats[client_name] = {
                name: stats
                for name, stats in deltas.items()
                if stats != ShaperStats()
            }

    # ------------------------------------------------------------- #
    # Media plumbing.
    # ------------------------------------------------------------- #

    def _camera_spec(self) -> FrameSpec:
        spec = self.config.content_spec
        if self.config.pad_fraction > 0 and self.config.feed not in (None, "flash"):
            content = make_feed(self.config)
            return PaddedSource(content, self.config.pad_fraction).spec
        return spec

    def _setup_media(
        self,
        wiring: SessionWiring,
        context: RateContext,
        artifacts: SessionArtifacts,
    ) -> None:
        config = self.config
        host_client = self.clients[self.host_name]

        if config.feed is not None:
            # The camera ticks and the post-session QoE reference both
            # draw the same deterministic frames; memoise them.
            content = CachedFrames(make_feed(config))
            artifacts.content_feed = content
            if config.pad_fraction > 0 and config.feed != "flash":
                padded = PaddedSource(content, config.pad_fraction)
                artifacts.padded_feed = padded
                host_client.attach_camera(padded)
                camera_spec = padded.spec
            else:
                host_client.attach_camera(content)
                camera_spec = content.spec
            self._start_video_streamer(
                host_client, wiring, context, camera_spec, artifacts
            )

        if config.audio:
            source = SpeechLikeSource(seed=config.feed_seed)
            artifacts.audio_source = source
            host_client.attach_microphone(source)
            audio = AudioStreamer(
                host_client,
                wiring,
                AudioCodecConfig(
                    bitrate_bps=self.platform.audio_bps,
                    concealment=self.platform.audio_concealment,
                ),
                codec_batch=config.codec_batch,
            )
            audio.start(config.duration_s, start_delay_s=config.settle_s)
            artifacts.streamers[self.host_name + ":audio"] = audio

        # Additional senders (e.g. phones with cameras on, or the
        # extra high-motion VMs of Table 4).
        for name in self.extra_sender_names:
            client = self.clients[name]
            if client.camera is None:
                client.attach_camera(
                    LowMotionFeed(config.content_spec, seed=config.feed_seed + 97)
                )
            self._start_video_streamer(
                client, wiring, context, client.camera.spec, artifacts
            )

    def _start_video_streamer(
        self,
        client: BaseClient,
        wiring: SessionWiring,
        context: RateContext,
        camera_spec: FrameSpec,
        artifacts: SessionArtifacts,
    ) -> None:
        config = self.config
        if config.use_codec:
            streamer = VideoStreamer(
                client,
                wiring,
                self.platform,
                context,
                camera_spec,
                codec_config=VideoCodecConfig(gop_size=config.gop_size),
                normalize_wire_rate=config.wire_normalized,
                codec_batch=config.codec_batch,
            )
        else:
            streamer = ModelVideoStreamer(
                client,
                wiring,
                self.platform,
                context,
                camera_spec,
                rng=self.network.rng,
                gop=config.gop_size,
            )
        streamer.start(config.duration_s, start_delay_s=config.settle_s)
        artifacts.streamers[client.name + ":video"] = streamer

    # ------------------------------------------------------------- #
    # Receive-side plumbing.
    # ------------------------------------------------------------- #

    def _setup_receivers(
        self, wiring: SessionWiring, artifacts: SessionArtifacts
    ) -> None:
        config = self.config
        simulator = self.network.simulator
        camera_spec = self._camera_spec() if config.feed is not None else None
        high_flow = (
            wiring.video_flow(self.host_name, StreamLayer.HIGH)
            if config.feed is not None
            else None
        )
        audio_flow = wiring.audio_flow(self.host_name) if config.audio else None

        for name, client in self.clients.items():
            if name == self.host_name:
                continue
            simulator.schedule(
                config.settle_s, client.receiver.start_feedback_loop
            )
            subscribed = wiring.subscriptions.get(name, {})
            watches_host = StreamLayer.HIGH in subscribed.get(self.host_name, [])
            if config.record_video and watches_host and high_flow is not None:
                recorder = DesktopRecorder(
                    client,
                    camera_spec,
                    pad_fraction=config.pad_fraction,
                )
                decoder = client.receiver.watch_video(
                    high_flow,
                    camera_spec,
                    codec_batch=config.codec_batch,
                    defer=config.defer_decode,
                )
                recorder.start(
                    decoder,
                    config.duration_s,
                    start_delay_s=config.settle_s + 0.2,
                )
                artifacts.recorders[name] = recorder
            elif watches_host and high_flow is not None and config.use_codec:
                # Decode without recording so freeze statistics exist;
                # nobody renders this flow, so skip reconstruction.
                client.receiver.watch_video(
                    high_flow,
                    camera_spec,
                    codec_batch=config.codec_batch,
                    pixels=False,
                )
            if config.record_audio and audio_flow is not None:
                client.receiver.listen_audio(
                    audio_flow,
                    AudioCodecConfig(
                        bitrate_bps=self.platform.audio_bps,
                        concealment=self.platform.audio_concealment,
                    ),
                    codec_batch=config.codec_batch,
                )

    # ------------------------------------------------------------- #
    # Probing.
    # ------------------------------------------------------------- #

    def _setup_probing(
        self, wiring: SessionWiring, artifacts: SessionArtifacts
    ) -> None:
        config = self.config
        simulator = self.network.simulator
        discovery_at = config.settle_s + 1.0

        def discover_and_probe(client: BaseClient) -> None:
            prober = artifacts.probers.get(client.name)
            if prober is None:
                prober = Prober(client.host)
                artifacts.probers[client.name] = prober
            endpoints = client.discovered_endpoints()
            if not endpoints:
                # Nothing observed yet (e.g. a pure receiver before the
                # first media arrives); fall back to the wired endpoint,
                # which is what the client's signalling already knows.
                endpoints = {wiring.service_endpoint_key(client.name)}
            for endpoint in endpoints:
                prober.probe(
                    endpoint,
                    count=config.probe_count,
                    interval_s=config.probe_interval_s,
                )

        for client in self.clients.values():
            simulator.schedule(discovery_at, discover_and_probe, client)
