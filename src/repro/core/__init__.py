"""Harness core: the paper's benchmarking methodology as a library.

* :mod:`repro.core.lag` — streaming-lag extraction from packet traces
  (the Figure 2 detector),
* :mod:`repro.core.probing` — active RTT probing of discovered service
  endpoints (the tcpping pipeline),
* :mod:`repro.core.session` — orchestration of one meeting session
  across emulated clients,
* :mod:`repro.core.testbed` — builds the full deployment (network,
  regions, VMs, platforms) and runs sessions,
* :mod:`repro.core.postprocess` — recording-to-QoE pipeline (crop,
  resize, align, score),
* :mod:`repro.core.results` — result containers and aggregation,
* :mod:`repro.core.experiment` — seeded, repeated experiment running.
"""

from .lag import LagDetector, LagMeasurement, measure_streaming_lag
from .probing import ProbeResult, Prober
from .results import (
    LagSessionResult,
    QoeSessionResult,
    RateSummary,
    SummaryStats,
)
from .session import MeetingSession, SessionConfig
from .testbed import Testbed, TestbedConfig

__all__ = [
    "LagDetector",
    "LagMeasurement",
    "LagSessionResult",
    "MeetingSession",
    "ProbeResult",
    "Prober",
    "QoeSessionResult",
    "RateSummary",
    "SessionConfig",
    "SummaryStats",
    "Testbed",
    "TestbedConfig",
    "measure_streaming_lag",
]
