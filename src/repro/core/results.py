"""Result containers shared by experiments and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import AnalysisError
from ..net.address import EndpointKey


@dataclass
class SummaryStats:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    median: float
    p10: float
    p90: float

    @classmethod
    def from_values(cls, values) -> "SummaryStats":
        """Build a summary; raises on empty input."""
        array = np.asarray(list(values), dtype=np.float64)
        if array.size == 0:
            raise AnalysisError("cannot summarise an empty sample")
        return cls(
            count=int(array.size),
            mean=float(array.mean()),
            std=float(array.std()),
            median=float(np.median(array)),
            p10=float(np.percentile(array, 10)),
            p90=float(np.percentile(array, 90)),
        )

    def to_dict(self) -> Dict[str, float]:
        """A JSON-serializable form (used by campaign result stores)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "median": self.median,
            "p10": self.p10,
            "p90": self.p90,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "SummaryStats":
        """Rebuild a summary persisted with :meth:`to_dict`."""
        try:
            return cls(
                count=int(data["count"]),
                mean=float(data["mean"]),
                std=float(data["std"]),
                median=float(data["median"]),
                p10=float(data["p10"]),
                p90=float(data["p90"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AnalysisError(f"bad summary record: {exc!r}") from exc


@dataclass
class LagSessionResult:
    """Per-session lag study output.

    Attributes:
        platform: Platform name.
        host: Meeting-host client name.
        lags_ms: Per-receiver lists of matched lag measurements (ms).
        rtts_ms: Per-receiver mean RTT to its probed endpoint (ms).
        endpoints: Per-receiver endpoint the client discovered.
    """

    platform: str
    host: str
    session_index: int
    lags_ms: Dict[str, List[float]] = field(default_factory=dict)
    rtts_ms: Dict[str, float] = field(default_factory=dict)
    endpoints: Dict[str, EndpointKey] = field(default_factory=dict)


@dataclass
class RateSummary:
    """Upload/download L7 data rates of one session (Fig. 15 metric)."""

    upload_bps: float
    download_bps_by_client: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_download_bps(self) -> float:
        """Average download rate across receiving clients."""
        rates = list(self.download_bps_by_client.values())
        if not rates:
            raise AnalysisError("no download rates recorded")
        return float(np.mean(rates))


@dataclass
class QoeSessionResult:
    """Per-session QoE study output.

    Attributes:
        platform: Platform name.
        num_participants: The paper's N.
        motion: ``"low"`` or ``"high"``.
        psnr / ssim / vifp: Mean metric per receiving client.
        rates: Session traffic summary.
        mos_lqo: Audio score per receiving client (when audio scored).
        frames_frozen: Receiver-side freeze counts (stall indicator).
    """

    platform: str
    num_participants: int
    motion: str
    session_index: int
    psnr: Dict[str, float] = field(default_factory=dict)
    ssim: Dict[str, float] = field(default_factory=dict)
    vifp: Dict[str, float] = field(default_factory=dict)
    rates: Optional[RateSummary] = None
    mos_lqo: Dict[str, float] = field(default_factory=dict)
    frames_frozen: Dict[str, int] = field(default_factory=dict)

    def mean_metric(self, metric: str) -> float:
        """Average a metric over receiving clients."""
        values = getattr(self, metric)
        if not values:
            raise AnalysisError(f"no {metric} values in result")
        return float(np.mean(list(values.values())))
