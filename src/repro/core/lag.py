"""Streaming-lag extraction from packet traces (Figure 2).

"We purposefully set the video screen of a meeting host to be a
blank-screen with periodic flashes of an image ... The first big packet
that appears after more than a second-long quiescent period indicates
the arrival of a non-blank video signal.  We measure streaming lag
between the meeting host and the other participant with the time shift
between the first big packet on sender-side and receiver-side."
(Section 4.2.)

:class:`LagDetector` implements exactly that detector over the
capture records of :mod:`repro.net.capture`; it is a pure trace
analysis, so it would run unchanged over real pcap-derived records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import MeasurementError
from ..net.capture import Capture, CapturedPacket, Direction
from ..units import to_ms

#: Payload threshold separating video bursts from background chatter
#: ("periodic spikes of big packets (>200 bytes)").
BIG_PACKET_BYTES = 200

#: Minimum gap that qualifies as a quiescent period.
QUIESCENT_PERIOD_S = 1.0


@dataclass(frozen=True)
class LagMeasurement:
    """One matched flash: sender burst time, receiver burst time."""

    sent_at: float
    received_at: float

    @property
    def lag_s(self) -> float:
        """Streaming lag in seconds."""
        return self.received_at - self.sent_at

    @property
    def lag_ms(self) -> float:
        """Streaming lag in milliseconds (the unit of Figs. 4-7)."""
        return to_ms(self.lag_s)


@dataclass
class LagDetector:
    """Burst-onset detector over packet time/size series.

    Attributes:
        big_packet_bytes: L7 payload threshold for a "big" packet.
        quiescent_period_s: Silence needed before a burst onset counts.
    """

    big_packet_bytes: int = BIG_PACKET_BYTES
    quiescent_period_s: float = QUIESCENT_PERIOD_S

    def burst_onsets(self, series: Sequence[Tuple[float, int]]) -> List[float]:
        """Timestamps of first-big-packet-after-quiescence events.

        Args:
            series: (timestamp, payload_bytes) pairs in time order.
        """
        onsets: List[float] = []
        last_big: float | None = None
        for timestamp, payload in series:
            if payload <= self.big_packet_bytes:
                continue
            if last_big is None or timestamp - last_big > self.quiescent_period_s:
                onsets.append(timestamp)
            last_big = timestamp
        return onsets

    def match_bursts(
        self,
        sender_onsets: Sequence[float],
        receiver_onsets: Sequence[float],
        max_lag_s: float = 0.9,
    ) -> List[LagMeasurement]:
        """Pair sender bursts with the first receiver burst that follows.

        Unmatched bursts (flash lost in transit, or observed before the
        receiver joined) are skipped.  ``max_lag_s`` bounds plausible
        lags; with two-second flash periodicity anything approaching a
        full period is a mismatch, not a lag.
        """
        if max_lag_s <= 0:
            raise MeasurementError("max_lag_s must be positive")
        measurements: List[LagMeasurement] = []
        receiver_index = 0
        receiver_list = list(receiver_onsets)
        for sent_at in sender_onsets:
            while (
                receiver_index < len(receiver_list)
                and receiver_list[receiver_index] < sent_at
            ):
                receiver_index += 1
            if receiver_index >= len(receiver_list):
                break
            received_at = receiver_list[receiver_index]
            if received_at - sent_at <= max_lag_s:
                measurements.append(LagMeasurement(sent_at, received_at))
                receiver_index += 1
        return measurements


def measure_streaming_lag(
    sender_capture: Capture,
    receiver_capture: Capture,
    detector: LagDetector | None = None,
) -> List[LagMeasurement]:
    """End-to-end lag measurement between two captures.

    Takes the sender's outgoing and the receiver's incoming time/size
    series, detects burst onsets on both sides and matches them.

    Raises:
        MeasurementError: If either capture contains no media packets.
    """
    detector = detector if detector is not None else LagDetector()
    sent_series = sender_capture.time_size_series(Direction.OUT)
    received_series = receiver_capture.time_size_series(Direction.IN)
    if not sent_series:
        raise MeasurementError("sender capture has no outgoing packets")
    if not received_series:
        raise MeasurementError("receiver capture has no incoming packets")
    sender_onsets = detector.burst_onsets(sent_series)
    receiver_onsets = detector.burst_onsets(received_series)
    return detector.match_bursts(sender_onsets, receiver_onsets)


def lag_statistics_ms(measurements: Sequence[LagMeasurement]) -> dict:
    """Summary statistics (ms) over matched lag measurements."""
    if not measurements:
        raise MeasurementError("no lag measurements to summarise")
    values = np.array([m.lag_ms for m in measurements])
    return {
        "count": int(values.size),
        "mean": float(values.mean()),
        "median": float(np.median(values)),
        "p10": float(np.percentile(values, 10)),
        "p90": float(np.percentile(values, 90)),
        "std": float(values.std()),
    }
