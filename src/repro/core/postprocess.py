"""Recording post-processing: from desktop capture to QoE scores.

Implements the Section 4.3/4.4 pipeline:

video -- "We first crop out the surrounding padding and resize video
frames to match the content layout and resolution of the injected
videos.  On top of that, we synchronize the start/end time of
original/recorded videos ... by trimming them in a way that per-frame
SSIM similarity is maximized."

audio -- "we normalize audio volume in the recorded audio (with EBU
R128 loudness normalization), and then synchronize the
beginning/ending of the audio in reference to the originally injected
audio ... Finally, we use the ViSQOL tool ... to compute the MOS-LQO
score."
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import AnalysisError
from ..media.frames import FrameSource
from ..media.padding import PaddedSource, resize_frame
from ..media.sync import (
    align_recordings,
    find_audio_offset,
    normalize_loudness,
    trim_to_offset,
)
from ..qoe.visqol import mos_lqo
from ..qoe.vqmt import VideoQualityReport, score_video


def prepare_recorded_frames(
    padded_feed: PaddedSource, recorded: Sequence[np.ndarray]
) -> List[np.ndarray]:
    """Crop the padding and restore the content resolution."""
    if not recorded:
        raise AnalysisError("no recorded frames to prepare")
    content_shape = padded_feed.content.spec.shape
    prepared = []
    for frame in recorded:
        cropped = padded_feed.crop(frame)
        prepared.append(resize_frame(cropped, content_shape))
    return prepared


def score_recorded_video(
    padded_feed: PaddedSource,
    recorded: Sequence[np.ndarray],
    skip_leading: int = 2,
    max_shift: int = 30,
    compute_vifp: bool = True,
    max_frames: int | None = None,
) -> VideoQualityReport:
    """Full video pipeline: crop -> resize -> align -> VQMT scoring.

    Args:
        padded_feed: The injected (padded) feed; its content feed is
            the scoring reference.
        recorded: Desktop-recorder frames from a receiving client.
        skip_leading: Recorder frames to drop from the front (black
            frames before the first decode).
        max_shift: Alignment search range in frames.
        compute_vifp: Disable to skip the expensive VIFp series.
        max_frames: Cap on scored frames (None scores everything).
    """
    usable = list(recorded[skip_leading:])
    if not usable:
        raise AnalysisError("recording too short after skip_leading")
    prepared = prepare_recorded_frames(padded_feed, usable)
    # The recording's k-th kept frame shows feed content from roughly
    # frame ``skip_leading + k`` (recorder and feed tick at the same
    # fps); generate the reference window around that point so the
    # alignment search starts near the truth.
    ref_start = max(0, skip_leading - max_shift)
    reference = padded_feed.content.frames(
        len(prepared) + 2 * max_shift, start=ref_start
    )
    _shift, ref_aligned, rec_aligned = align_recordings(
        reference, prepared, max_shift=max_shift
    )
    if max_frames is not None:
        ref_aligned = ref_aligned[:max_frames]
        rec_aligned = rec_aligned[:max_frames]
    return score_video(ref_aligned, rec_aligned, compute_vifp=compute_vifp)


def score_recorded_audio(
    reference: np.ndarray,
    recorded: np.ndarray,
    sample_rate: int = 16_000,
    max_offset_s: float = 2.0,
) -> float:
    """Full audio pipeline: normalise -> offset-align -> MOS-LQO."""
    if len(reference) == 0 or len(recorded) == 0:
        raise AnalysisError("cannot score empty audio")
    recorded_norm = normalize_loudness(recorded, sample_rate=sample_rate)
    reference_norm = normalize_loudness(reference, sample_rate=sample_rate)
    offset = find_audio_offset(
        reference_norm,
        recorded_norm,
        max_offset=int(max_offset_s * sample_rate),
    )
    ref_aligned, rec_aligned = trim_to_offset(reference_norm, recorded_norm, offset)
    return mos_lqo(ref_aligned, rec_aligned, sample_rate=sample_rate)
