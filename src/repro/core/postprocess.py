"""Recording post-processing: from desktop capture to QoE scores.

Implements the Section 4.3/4.4 pipeline:

video -- "We first crop out the surrounding padding and resize video
frames to match the content layout and resolution of the injected
videos.  On top of that, we synchronize the start/end time of
original/recorded videos ... by trimming them in a way that per-frame
SSIM similarity is maximized."

audio -- "we normalize audio volume in the recorded audio (with EBU
R128 loudness normalization), and then synchronize the
beginning/ending of the audio in reference to the originally injected
audio ... Finally, we use the ViSQOL tool ... to compute the MOS-LQO
score."
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from ..media.frames import FrameSource
from ..media.padding import PaddedSource, resize_frames
from ..media.sync import (
    PROBE_FRAMES,
    align_recordings,
    find_audio_offset,
    normalize_loudness,
    trim_to_offset,
)
from ..qoe.visqol import mos_lqo
from ..qoe.vqmt import VideoQualityReport, score_video


def prepare_recorded_frames(
    padded_feed: PaddedSource, recorded: Sequence[np.ndarray]
) -> np.ndarray:
    """Crop the padding and restore the content resolution.

    The whole recording is processed as one ``(T, H, W)`` stack: the
    crop is a single slice and the resize one vectorized pass through
    the cached gather plan.  Returns the prepared frame stack.
    """
    if len(recorded) == 0:
        raise AnalysisError("no recorded frames to prepare")
    try:
        stack = np.asarray(recorded)
    except ValueError as exc:
        raise AnalysisError(f"recorded frames do not stack: {exc}") from exc
    if stack.ndim != 3 or stack.dtype == object:
        raise AnalysisError(
            f"expected equally-shaped recorded frames, got {stack.shape}"
        )
    content_shape = padded_feed.content.spec.shape
    return resize_frames(padded_feed.crop(stack), content_shape)


def recording_prefix_frames(
    skip_leading: int = 2,
    max_shift: int = 30,
    max_frames: int | None = None,
) -> int | None:
    """Recorded frames that can influence a capped scoring run.

    The alignment search probes only the first ``PROBE_FRAMES +
    max_shift`` prepared pairs and the scored window is capped at
    ``max_frames``, so a recording prefix of this length produces
    byte-identical scores; pass it to
    :meth:`~repro.clients.recorder.DesktopRecorder.frames_head` to
    skip resampling the rest.  ``None`` (uncapped) means every frame
    matters.
    """
    if max_frames is None:
        return None
    return skip_leading + max_shift + PROBE_FRAMES + max_frames


def align_recorded_video(
    padded_feed: PaddedSource,
    recorded: Sequence[np.ndarray],
    skip_leading: int = 2,
    max_shift: int = 30,
    max_frames: int | None = None,
    reference: np.ndarray | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Crop, resize and align a recording against its reference feed.

    Returns equal-length ``(reference, recorded)`` frame stacks ready
    for :func:`repro.qoe.vqmt.score_video` (callers may concatenate
    several recordings into one scoring pass -- the per-frame series
    are independent across frames).

    Args:
        padded_feed: The injected (padded) feed; its content feed is
            the scoring reference.
        recorded: Desktop-recorder frames from a receiving client.
        skip_leading: Recorder frames to drop from the front (black
            frames before the first decode).
        max_shift: Alignment search range in frames.
        max_frames: Cap on returned frames (None keeps everything).
        reference: Optional pre-generated reference window starting at
            ``max(0, skip_leading - max_shift)`` of the content feed
            and covering at least ``prepared + 2 * max_shift`` frames;
            callers scoring several recordings of the same feed pass
            one shared window instead of regenerating it.
    """
    usable = recorded[skip_leading:]
    if len(usable) == 0:
        raise AnalysisError("recording too short after skip_leading")
    if max_frames is not None:
        # The alignment probes only the first PROBE_FRAMES + max_shift
        # pairs and the scored window is capped, so frames beyond this
        # prefix can never influence the result -- skip preparing them.
        usable = usable[: max_shift + PROBE_FRAMES + max_frames]
    prepared = prepare_recorded_frames(padded_feed, usable)
    # The recording's k-th kept frame shows feed content from roughly
    # frame ``skip_leading + k`` (recorder and feed tick at the same
    # fps); generate the reference window around that point so the
    # alignment search starts near the truth.
    ref_start = max(0, skip_leading - max_shift)
    window = len(prepared) + 2 * max_shift
    if reference is None:
        reference = np.asarray(padded_feed.content.frames(window, start=ref_start))
    elif len(reference) < window:
        raise AnalysisError(
            f"shared reference window holds {len(reference)} frames, "
            f"need at least {window}"
        )
    else:
        # Trim so results match a self-generated window exactly (the
        # overlap after alignment depends on the reference length).
        reference = np.asarray(reference)[:window]
    _shift, ref_aligned, rec_aligned = align_recordings(
        reference, prepared, max_shift=max_shift
    )
    if max_frames is not None:
        ref_aligned = ref_aligned[:max_frames]
        rec_aligned = rec_aligned[:max_frames]
    return np.asarray(ref_aligned), np.asarray(rec_aligned)


def score_recorded_video(
    padded_feed: PaddedSource,
    recorded: Sequence[np.ndarray],
    skip_leading: int = 2,
    max_shift: int = 30,
    compute_vifp: bool = True,
    max_frames: int | None = None,
) -> VideoQualityReport:
    """Full video pipeline: crop -> resize -> align -> VQMT scoring.

    Args:
        padded_feed: The injected (padded) feed; its content feed is
            the scoring reference.
        recorded: Desktop-recorder frames from a receiving client.
        skip_leading: Recorder frames to drop from the front (black
            frames before the first decode).
        max_shift: Alignment search range in frames.
        compute_vifp: Disable to skip the expensive VIFp series.
        max_frames: Cap on scored frames (None scores everything).
    """
    ref_aligned, rec_aligned = align_recorded_video(
        padded_feed,
        recorded,
        skip_leading=skip_leading,
        max_shift=max_shift,
        max_frames=max_frames,
    )
    return score_video(ref_aligned, rec_aligned, compute_vifp=compute_vifp)


def score_recorded_audio(
    reference: np.ndarray,
    recorded: np.ndarray,
    sample_rate: int = 16_000,
    max_offset_s: float = 2.0,
) -> float:
    """Full audio pipeline: normalise -> offset-align -> MOS-LQO."""
    if len(reference) == 0 or len(recorded) == 0:
        raise AnalysisError("cannot score empty audio")
    recorded_norm = normalize_loudness(recorded, sample_rate=sample_rate)
    reference_norm = normalize_loudness(reference, sample_rate=sample_rate)
    offset = find_audio_offset(
        reference_norm,
        recorded_norm,
        max_offset=int(max_offset_s * sample_rate),
    )
    ref_aligned, rec_aligned = trim_to_offset(reference_norm, recorded_norm, offset)
    return mos_lqo(ref_aligned, rec_aligned, sample_rate=sample_rate)
