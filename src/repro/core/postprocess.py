"""Recording post-processing: from desktop capture to QoE scores.

Implements the Section 4.3/4.4 pipeline:

video -- "We first crop out the surrounding padding and resize video
frames to match the content layout and resolution of the injected
videos.  On top of that, we synchronize the start/end time of
original/recorded videos ... by trimming them in a way that per-frame
SSIM similarity is maximized."

audio -- "we normalize audio volume in the recorded audio (with EBU
R128 loudness normalization), and then synchronize the
beginning/ending of the audio in reference to the originally injected
audio ... Finally, we use the ViSQOL tool ... to compute the MOS-LQO
score."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from ..media.frames import FrameSource
from ..media.padding import PaddedSource, resize_frames
from ..net.dynamics import PhaseWindow
from ..media.sync import (
    PROBE_FRAMES,
    align_recordings,
    find_audio_offset,
    normalize_loudness,
    trim_to_offset,
)
from ..qoe.visqol import mos_lqo
from ..qoe.vqmt import VideoQualityReport, score_video


def prepare_recorded_frames(
    padded_feed: PaddedSource, recorded: Sequence[np.ndarray]
) -> np.ndarray:
    """Crop the padding and restore the content resolution.

    The whole recording is processed as one ``(T, H, W)`` stack: the
    crop is a single slice and the resize one vectorized pass through
    the cached gather plan.  Returns the prepared frame stack.
    """
    if len(recorded) == 0:
        raise AnalysisError("no recorded frames to prepare")
    try:
        stack = np.asarray(recorded)
    except ValueError as exc:
        raise AnalysisError(f"recorded frames do not stack: {exc}") from exc
    if stack.ndim != 3 or stack.dtype == object:
        raise AnalysisError(
            f"expected equally-shaped recorded frames, got {stack.shape}"
        )
    content_shape = padded_feed.content.spec.shape
    return resize_frames(padded_feed.crop(stack), content_shape)


def recording_prefix_frames(
    skip_leading: int = 2,
    max_shift: int = 30,
    max_frames: int | None = None,
) -> int | None:
    """Recorded frames that can influence a capped scoring run.

    The alignment search probes only the first ``PROBE_FRAMES +
    max_shift`` prepared pairs and the scored window is capped at
    ``max_frames``, so a recording prefix of this length produces
    byte-identical scores; pass it to
    :meth:`~repro.clients.recorder.DesktopRecorder.frames_head` to
    skip resampling the rest.  ``None`` (uncapped) means every frame
    matters.
    """
    if max_frames is None:
        return None
    return skip_leading + max_shift + PROBE_FRAMES + max_frames


def align_recorded_video(
    padded_feed: PaddedSource,
    recorded: Sequence[np.ndarray],
    skip_leading: int = 2,
    max_shift: int = 30,
    max_frames: int | None = None,
    reference: np.ndarray | None = None,
    with_offset: bool = False,
):
    """Crop, resize and align a recording against its reference feed.

    Returns equal-length ``(reference, recorded)`` frame stacks ready
    for :func:`repro.qoe.vqmt.score_video` (callers may concatenate
    several recordings into one scoring pass -- the per-frame series
    are independent across frames).

    Args:
        padded_feed: The injected (padded) feed; its content feed is
            the scoring reference.
        recorded: Desktop-recorder frames from a receiving client.
        skip_leading: Recorder frames to drop from the front (black
            frames before the first decode).
        max_shift: Alignment search range in frames.
        max_frames: Cap on returned frames (None keeps everything).
        reference: Optional pre-generated reference window starting at
            ``max(0, skip_leading - max_shift)`` of the content feed
            and covering at least ``prepared + 2 * max_shift`` frames;
            callers scoring several recordings of the same feed pass
            one shared window instead of regenerating it.
        with_offset: Also return the index into ``recorded`` of the
            first aligned frame, so per-frame scores can be mapped back
            to recorder timestamps (phase-segmented QoE needs this).
    """
    usable = recorded[skip_leading:]
    if len(usable) == 0:
        raise AnalysisError("recording too short after skip_leading")
    if max_frames is not None:
        # The alignment probes only the first PROBE_FRAMES + max_shift
        # pairs and the scored window is capped, so frames beyond this
        # prefix can never influence the result -- skip preparing them.
        usable = usable[: max_shift + PROBE_FRAMES + max_frames]
    prepared = prepare_recorded_frames(padded_feed, usable)
    # The recording's k-th kept frame shows feed content from roughly
    # frame ``skip_leading + k`` (recorder and feed tick at the same
    # fps); generate the reference window around that point so the
    # alignment search starts near the truth.
    ref_start = max(0, skip_leading - max_shift)
    window = len(prepared) + 2 * max_shift
    if reference is None:
        reference = np.asarray(padded_feed.content.frames(window, start=ref_start))
    elif len(reference) < window:
        raise AnalysisError(
            f"shared reference window holds {len(reference)} frames, "
            f"need at least {window}"
        )
    else:
        # Trim so results match a self-generated window exactly (the
        # overlap after alignment depends on the reference length).
        reference = np.asarray(reference)[:window]
    shift, ref_aligned, rec_aligned = align_recordings(
        reference, prepared, max_shift=max_shift
    )
    if max_frames is not None:
        ref_aligned = ref_aligned[:max_frames]
        rec_aligned = rec_aligned[:max_frames]
    if with_offset:
        # Aligned frame k came from recorded[first_index + k]: the
        # trim search drops skip_leading frames up front and, for
        # positive shifts, the first ``shift`` prepared frames.
        first_index = skip_leading + max(shift, 0)
        return np.asarray(ref_aligned), np.asarray(rec_aligned), first_index
    return np.asarray(ref_aligned), np.asarray(rec_aligned)


def score_recorded_video(
    padded_feed: PaddedSource,
    recorded: Sequence[np.ndarray],
    skip_leading: int = 2,
    max_shift: int = 30,
    compute_vifp: bool = True,
    max_frames: int | None = None,
) -> VideoQualityReport:
    """Full video pipeline: crop -> resize -> align -> VQMT scoring.

    Args:
        padded_feed: The injected (padded) feed; its content feed is
            the scoring reference.
        recorded: Desktop-recorder frames from a receiving client.
        skip_leading: Recorder frames to drop from the front (black
            frames before the first decode).
        max_shift: Alignment search range in frames.
        compute_vifp: Disable to skip the expensive VIFp series.
        max_frames: Cap on scored frames (None scores everything).
    """
    ref_aligned, rec_aligned = align_recorded_video(
        padded_feed,
        recorded,
        skip_leading=skip_leading,
        max_shift=max_shift,
        max_frames=max_frames,
    )
    return score_video(ref_aligned, rec_aligned, compute_vifp=compute_vifp)


@dataclass
class PhaseQoe:
    """QoE of one timeline phase of a recording.

    Attributes:
        name: Phase name (timeline phase, possibly ``+impulse``).
        frames: Aligned frames scored inside the phase window.
        psnr_mean / ssim_mean / vifp_mean: Phase means (NaN when the
            phase contributed no frames, e.g. a total outage).
    """

    name: str
    frames: int
    psnr_mean: float
    ssim_mean: float
    vifp_mean: float


def segment_series_by_phase(
    series: Sequence[float],
    frame_times: Sequence[float],
    windows: Sequence[PhaseWindow],
) -> Dict[str, Tuple[int, float]]:
    """Mean of a per-frame series within each phase window.

    ``frame_times[k]`` is the recording timestamp of the frame scored
    at ``series[k]``.  Windows sharing a name pool their frames.
    Returns ``name -> (frame_count, mean)`` with NaN means for empty
    phases.
    """
    if len(series) != len(frame_times):
        raise AnalysisError(
            f"series has {len(series)} entries for {len(frame_times)} times"
        )
    values = np.asarray(series, dtype=np.float64)
    times = np.asarray(frame_times, dtype=np.float64)
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for window in windows:
        mask = (times >= window.start_s) & (times < window.end_s)
        sums[window.name] = sums.get(window.name, 0.0) + float(values[mask].sum())
        counts[window.name] = counts.get(window.name, 0) + int(mask.sum())
    return {
        name: (counts[name],
               sums[name] / counts[name] if counts[name] else float("nan"))
        for name in counts
    }


def score_recorded_video_by_phase(
    padded_feed: PaddedSource,
    recorded: Sequence[np.ndarray],
    timestamps: Sequence[float],
    windows: Sequence[PhaseWindow],
    skip_leading: int = 2,
    max_shift: int = 30,
    compute_vifp: bool = False,
    max_frames: int | None = None,
) -> Tuple[VideoQualityReport, List[PhaseQoe]]:
    """Score a recording once, then segment the series by phase.

    The recording is cropped/resized/aligned and scored in a single
    batched pass (identical numbers to :func:`score_recorded_video`);
    the per-frame series are then attributed to timeline phases via the
    recorder timestamps of the aligned frames.  Returns the overall
    report plus one :class:`PhaseQoe` per phase, in window order.
    """
    if len(recorded) != len(timestamps):
        raise AnalysisError(
            f"{len(recorded)} recorded frames but {len(timestamps)} timestamps"
        )
    ref_aligned, rec_aligned, first_index = align_recorded_video(
        padded_feed,
        recorded,
        skip_leading=skip_leading,
        max_shift=max_shift,
        max_frames=max_frames,
        with_offset=True,
    )
    report = score_video(ref_aligned, rec_aligned, compute_vifp=compute_vifp)
    frame_times = np.asarray(timestamps)[
        first_index : first_index + len(rec_aligned)
    ]
    psnr_by = segment_series_by_phase(report.psnr_series, frame_times, windows)
    ssim_by = segment_series_by_phase(report.ssim_series, frame_times, windows)
    vifp_by = (
        segment_series_by_phase(report.vifp_series, frame_times, windows)
        if compute_vifp
        else {name: (count, float("nan")) for name, (count, _) in psnr_by.items()}
    )
    seen: set = set()
    phases: List[PhaseQoe] = []
    for window in windows:
        if window.name in seen:
            continue
        seen.add(window.name)
        count, psnr_mean = psnr_by[window.name]
        phases.append(
            PhaseQoe(
                name=window.name,
                frames=count,
                psnr_mean=psnr_mean,
                ssim_mean=ssim_by[window.name][1],
                vifp_mean=vifp_by[window.name][1],
            )
        )
    return report, phases


def score_recorded_audio(
    reference: np.ndarray,
    recorded: np.ndarray,
    sample_rate: int = 16_000,
    max_offset_s: float = 2.0,
) -> float:
    """Full audio pipeline: normalise -> offset-align -> MOS-LQO."""
    if len(reference) == 0 or len(recorded) == 0:
        raise AnalysisError("cannot score empty audio")
    recorded_norm = normalize_loudness(recorded, sample_rate=sample_rate)
    reference_norm = normalize_loudness(reference, sample_rate=sample_rate)
    offset = find_audio_offset(
        reference_norm,
        recorded_norm,
        max_offset=int(max_offset_s * sample_rate),
    )
    ref_aligned, rec_aligned = trim_to_offset(reference_norm, recorded_norm, offset)
    return mos_lqo(ref_aligned, rec_aligned, sample_rate=sample_rate)
