"""Active probing: RTT measurement against service endpoints.

The client monitor "discovers streaming service endpoints (IP address,
TCP/UDP port) from packet streams, and performs round-trip-time (RTT)
measurements against them.  We use tcpping for RTT measurements because
ICMP pings are blocked" (Section 3.2).  :class:`Prober` reproduces the
loop: periodic small probes to an endpoint, replies matched by probe id,
RTTs measured on the prober's local clock.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import MeasurementError
from ..net.address import EndpointKey
from ..net.node import Host
from ..net.packet import Packet, PacketKind
from ..units import to_ms

_probe_ids = itertools.count(1)


@dataclass
class ProbeResult:
    """RTT samples collected against one endpoint.

    Attributes:
        endpoint: The probed service endpoint.
        rtts_s: Round-trip times in seconds, in completion order.
        sent: Probes transmitted.
        lost: Probes that never saw a reply (judged at collection end).
    """

    endpoint: EndpointKey
    rtts_s: List[float] = field(default_factory=list)
    sent: int = 0
    lost: int = 0

    @property
    def received(self) -> int:
        """Number of successful probe round trips."""
        return len(self.rtts_s)

    def mean_rtt_ms(self) -> float:
        """Average RTT in milliseconds (the unit of Figs. 8-11)."""
        if not self.rtts_s:
            raise MeasurementError(f"no probe replies from {self.endpoint}")
        return to_ms(float(np.mean(self.rtts_s)))

    def percentile_rtt_ms(self, percentile: float) -> float:
        """An RTT percentile in milliseconds."""
        if not self.rtts_s:
            raise MeasurementError(f"no probe replies from {self.endpoint}")
        return to_ms(float(np.percentile(self.rtts_s, percentile)))


class Prober:
    """Sends paced probes from a host and matches the replies.

    The prober owns an ephemeral source port on its host; replies are
    matched via the probe id echoed in packet metadata (the simulator's
    stand-in for tcpping's SYN/RST sequence matching).
    """

    def __init__(self, host: Host) -> None:
        self._host = host
        self._address = host.bind_ephemeral(self._on_packet)
        self._in_flight: Dict[int, float] = {}
        self._results: Dict[EndpointKey, ProbeResult] = {}
        self._probe_endpoint: Dict[int, EndpointKey] = {}

    def probe(
        self,
        endpoint: EndpointKey,
        count: int = 100,
        interval_s: float = 1.0,
        start_delay_s: float = 0.0,
    ) -> ProbeResult:
        """Schedule ``count`` probes; returns the live result object.

        The returned :class:`ProbeResult` fills in as the simulation
        runs -- read it after the simulator has advanced past the last
        probe's reply.
        """
        if count < 1:
            raise MeasurementError("probe count must be >= 1")
        if interval_s <= 0:
            raise MeasurementError("probe interval must be positive")
        result = self._results.setdefault(endpoint, ProbeResult(endpoint))
        simulator = self._host.network.simulator
        for i in range(count):
            simulator.schedule(
                start_delay_s + i * interval_s, self._send_probe, endpoint
            )
        return result

    def _send_probe(self, endpoint: EndpointKey) -> None:
        probe_id = next(_probe_ids)
        result = self._results[endpoint]
        result.sent += 1
        packet = Packet(
            src=self._address,
            dst=endpoint.address,
            payload_bytes=20,
            kind=PacketKind.PROBE,
            flow_id=f"probe-{self._host.name}",
            metadata={"probe_id": probe_id},
        )
        # Replies reference the probe packet's id (reply_template sets
        # metadata["in_reply_to"]), so the ledger is keyed by it.
        self._in_flight[packet.packet_id] = self._host.local_time()
        self._probe_endpoint[packet.packet_id] = endpoint
        self._host.send(packet)

    def _on_packet(self, packet: Packet, host: Host) -> None:
        if packet.kind is not PacketKind.PROBE_REPLY:
            return
        original_id = packet.metadata.get("in_reply_to")
        if original_id is None or original_id not in self._in_flight:
            return
        sent_at = self._in_flight.pop(original_id)
        endpoint = self._probe_endpoint.pop(original_id)
        rtt = self._host.local_time() - sent_at
        self._results[endpoint].rtts_s.append(rtt)

    def finalize(self) -> None:
        """Mark unanswered probes as lost (call after the run)."""
        for probe_id in list(self._in_flight):
            endpoint = self._probe_endpoint.pop(probe_id)
            self._in_flight.pop(probe_id)
            self._results[endpoint].lost += 1

    def result_for(self, endpoint: EndpointKey) -> Optional[ProbeResult]:
        """The (possibly still filling) result for an endpoint."""
        return self._results.get(endpoint)

    def results(self) -> List[ProbeResult]:
        """All collected probe results."""
        return list(self._results.values())
