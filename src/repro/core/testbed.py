"""The testbed: regions, VMs, phones and platforms in one place.

A :class:`Testbed` owns a network, a region registry, the platform
models attached to that network and the set of deployed clients --
the simulation analogue of the paper's Azure subscription plus the
residential mobile rack.  Experiments ask it for clients and run
sessions through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..clients.android import ANDROID_DEVICES, AndroidClient
from ..clients.client import BaseClient, CloudVMClient
from ..clients.wifi import residential_wifi_link
from ..errors import ConfigurationError
from ..net.clock import SyncedClockFactory
from ..net.geo import LatencyModel
from ..net.link import default_cap_burst
from ..net.regions import RegionRegistry, default_registry
from ..net.routing import Network
from ..platforms import make_platform
from ..platforms.base import PlatformModel, ViewContext
from .session import MeetingSession, SessionArtifacts, SessionConfig


@dataclass(frozen=True)
class TestbedConfig:
    """Knobs of a testbed deployment.

    Attributes:
        seed: Master seed; everything random derives from it.
        latency_model: Wide-area delay model.
        clock_offset_std_s: Cloud time-sync quality for VM clocks.
    """

    seed: int = 0
    latency_model: LatencyModel = field(default_factory=LatencyModel)
    clock_offset_std_s: float = 100e-6


class Testbed:
    """A deployed measurement testbed over a simulated Internet."""

    def __init__(
        self,
        config: Optional[TestbedConfig] = None,
        registry: Optional[RegionRegistry] = None,
    ) -> None:
        self.config = config if config is not None else TestbedConfig()
        self.registry = registry if registry is not None else default_registry()
        self.rng = np.random.default_rng(self.config.seed)
        self.network = Network(
            latency_model=self.config.latency_model,
            rng=np.random.default_rng(self.config.seed + 1),
        )
        self._clock_factory = SyncedClockFactory(
            np.random.default_rng(self.config.seed + 2),
            offset_std_s=self.config.clock_offset_std_s,
        )
        self._platforms: Dict[str, PlatformModel] = {}
        self.clients: Dict[str, BaseClient] = {}

    # ------------------------------------------------------------- #
    # Deployment.
    # ------------------------------------------------------------- #

    def add_vm(self, vm_name: str) -> CloudVMClient:
        """Deploy one cloud VM client in its Table 3 region."""
        if vm_name in self.clients:
            raise ConfigurationError(f"client {vm_name!r} already deployed")
        region = self.registry.region_of_vm(vm_name)
        host = self.network.add_host(
            name=vm_name,
            location=region.location,
            clock=self._clock_factory.make_clock(),
            tier="client",
        )
        client = CloudVMClient(vm_name, host)
        self.clients[vm_name] = client
        return client

    def deploy_group(self, group: str) -> List[CloudVMClient]:
        """Deploy every VM of a Table 3 group (``US`` or ``Europe``)."""
        return [self.add_vm(name) for name in self.registry.vm_names(group)]

    def add_android(
        self,
        short_name: str,
        platform_name: str,
        view: Optional[ViewContext] = None,
        camera_on: bool = False,
        screen_on: bool = True,
        client_name: Optional[str] = None,
    ) -> AndroidClient:
        """Deploy a phone (``"S10"``/``"J3"``) at the residential site."""
        if short_name not in ANDROID_DEVICES:
            raise ConfigurationError(
                f"unknown device {short_name!r}; choose from "
                f"{sorted(ANDROID_DEVICES)}"
            )
        device = ANDROID_DEVICES[short_name]
        name = client_name if client_name is not None else short_name
        if name in self.clients:
            raise ConfigurationError(f"client {name!r} already deployed")
        host = self.network.add_host(
            name=name,
            location=self.registry.site("residential-us-east"),
            link=residential_wifi_link(),
            clock=self._clock_factory.make_clock(),
            tier="mobile",
        )
        client = AndroidClient(
            name=name,
            host=host,
            device=device,
            platform_name=platform_name,
            rng=np.random.default_rng(self.config.seed + hash(name) % 1000),
            view=view,
            camera_on=camera_on,
            screen_on=screen_on,
        )
        self.clients[name] = client
        return client

    def remove_client(self, name: str) -> None:
        """Forget a client (its host stays attached; names are scarce)."""
        self.clients.pop(name, None)

    # ------------------------------------------------------------- #
    # Platforms & sessions.
    # ------------------------------------------------------------- #

    def platform(self, name: str) -> PlatformModel:
        """The attached platform model (created on first use)."""
        key = name.lower()
        if key not in self._platforms:
            model = make_platform(key, seed=self.config.seed + 10)
            model.attach(self.network)
            self._platforms[key] = model
        return self._platforms[key]

    def apply_bandwidth_cap(
        self, client_name: str, rate_bps: Optional[float]
    ) -> None:
        """Install (or remove, with ``None``) an ingress cap on a client.

        This is the Section 4.4 tc/ifb hook, applied at the client's
        access link.
        """
        client = self.clients[client_name]
        client.host.link.set_ingress_cap(
            rate_bps,
            burst_bytes=default_cap_burst(rate_bps),
            now=self.network.simulator.now,
        )

    def clear_conditions(self, client_name: str) -> None:
        """Restore one client's access link to its base conditions.

        The cleanup counterpart of :meth:`apply_bandwidth_cap` and of
        timeline-driven sessions: experiment drivers call it in their
        ``finally`` so an aborted session cannot leave a shared link
        capped, lossy or delayed for whatever runs next.  Unknown
        clients are ignored -- cleanup must not mask the original
        error.
        """
        client = self.clients.get(client_name)
        if client is not None:
            client.host.link.clear_conditions(self.network.simulator.now)

    def run_session(
        self,
        platform_name: str,
        client_names: List[str],
        host_name: str,
        config: SessionConfig,
        extra_sender_names: Optional[List[str]] = None,
    ) -> SessionArtifacts:
        """Run one meeting session among deployed clients."""
        missing = [n for n in client_names if n not in self.clients]
        if missing:
            raise ConfigurationError(f"clients not deployed: {missing}")
        session = MeetingSession(
            platform=self.platform(platform_name),
            clients=[self.clients[n] for n in client_names],
            host_name=host_name,
            config=config,
            extra_sender_names=extra_sender_names,
        )
        return session.run()
