"""Google Meet service model.

Observed behaviour reproduced here (paper sections in parentheses):

* distributed endpoint architecture on UDP/19305: each client connects
  to its own geographically close endpoint and sessions are relayed
  between endpoints (Fig. 3); clients stick with 1-2 endpoints across
  20 sessions (4.2),
* cross-continental presence: European sessions stay in Europe, giving
  the lowest European lags (30-40 ms, Finding-2); in the US, lag is
  the *worst* despite the lowest RTTs, explained by per-location load
  variation on the (smaller) per-site capacity -- modelled as a
  per-(relay, session) exponential load delay on media forwarding
  that RTT probes bypass (4.2.1),
* the most dynamic rates: 1.6-2.0 Mbps for two-party sessions versus
  0.4-0.6 Mbps multi-party, ~20 % lower for low motion, with large
  per-session fluctuation (4.3.1); mobile clients get ~2 Mbps
  regardless of device, plus LOW-layer thumbnails of up to four other
  participants even in full screen (5, Table 4),
* no real gallery mode ("zooming out" leaves the layout unchanged), so
  gallery subscriptions are identical to full screen (5),
* audio at ~40 Kbps with robust concealment (4.4),
* the most graceful bandwidth adaptation of the three (4.4).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..net.address import MEET_UDP_PORT
from .base import (
    ClientBinding,
    PlatformModel,
    RelayTiming,
    ServiceRelay,
    StreamLayer,
)
from .ratecontrol import AdaptationPolicy, RateContext

#: Google edge sites; each client attaches to its nearest.
EDGE_SITES = (
    "meet-us-east",
    "meet-us-central",
    "meet-us-south",
    "meet-us-west",
    "meet-eu-west",
    "meet-eu-london",
    "meet-eu-central",
    "meet-eu-belgium",
    "meet-eu-zurich",
)

#: Endpoint churn probability per session (1.8 distinct per 20).
ENDPOINT_CHURN_PROBABILITY = 0.042

#: Baseline rates in bits/second.
TWO_PARTY_BPS = 1_800_000.0
MULTI_PARTY_BPS = 500_000.0
MOBILE_BPS = 2_000_000.0
THUMBNAIL_BPS = 40_000.0
LOW_MOTION_FACTOR = 0.8
#: Log-scale sigma of the per-session rate multiplier ("much more
#: dynamic rate fluctuation across different sessions").
SESSION_SIGMA = 0.16


class MeetModel(PlatformModel):
    """Meet: distributed sticky endpoints, dynamic rates, graceful."""

    name = "meet"
    udp_port = MEET_UDP_PORT
    audio_bps = 40_000.0
    audio_concealment = "repeat"
    relay_timing = RelayTiming(
        base_delay_s=0.008,
        jitter_scale_s=0.0015,
        session_load_scale_s=0.008,  # per-relay load variation
    )
    adaptation = AdaptationPolicy(
        loss_threshold=0.03,
        recovery_threshold=0.005,
        decrease_factor=0.7,
        increase_factor=1.08,
        floor_bps=80_000.0,
        patience_reports=1,
    )

    def thumbnails_in_fullscreen(self) -> int:
        # "even in full screen, Meet still shows a small preview of the
        # video of the other ... participants" (Section 5).
        return self.MAX_TILES

    def supports_gallery_subscription(self) -> bool:
        # Meet "has no support for this feature" (Section 5, footnote).
        return False

    def video_rates(self, context: RateContext) -> Dict[StreamLayer, float]:
        if context.device.startswith("mobile"):
            high = MOBILE_BPS
        elif context.num_participants == 2:
            high = TWO_PARTY_BPS
        else:
            high = MULTI_PARTY_BPS
        if context.motion == "low":
            high *= LOW_MOTION_FACTOR
        high *= self.session_rate_multiplier(context)
        return {StreamLayer.HIGH: high, StreamLayer.LOW: THUMBNAIL_BPS}

    def session_rate_multiplier(self, context: RateContext) -> float:
        """Lognormal per-session factor, deterministic in the session."""
        rng_local = np.random.default_rng(
            (self._seed << 16) ^ (context.session_index * 2654435761 % 2**31)
        )
        return float(rng_local.lognormal(mean=0.0, sigma=SESSION_SIGMA))

    def _select_relays(
        self, clients: List[ClientBinding], host_name: str, session_id: str
    ) -> Dict[str, ServiceRelay]:
        relays: Dict[str, ServiceRelay] = {}
        for client in clients:
            endpoint_host = self.directory.client_endpoint(
                client.name,
                client.host.location,
                list(EDGE_SITES),
                churn_probability=ENDPOINT_CHURN_PROBABILITY,
            )
            relays[client.name] = ServiceRelay.install(
                endpoint_host, self.udp_port, self.relay_timing, self.rng
            )
        return relays
