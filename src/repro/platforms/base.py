"""Platform model base: relays, session wiring, subscription logic.

A :class:`PlatformModel` turns a list of client bindings into a wired
meeting session: relay hosts are allocated per the platform's endpoint
architecture (Fig. 3), media flows are routed sender -> relay(s) ->
receivers, probe packets are answered at the relay, and congestion
feedback is routed back to senders.  Subclasses supply the
platform-specific pieces: endpoint selection, target rates and the
adaptation policy.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import PlatformError, SessionError
from ..net.address import Address, EndpointKey
from ..net.node import Host
from ..net.packet import Packet, PacketKind
from ..net.regions import RegionRegistry, default_registry
from ..net.routing import Network
from .endpoints import EndpointDirectory
from .ratecontrol import AdaptationPolicy, RateContext, SenderRateState


class StreamLayer(str, enum.Enum):
    """Simulcast layers a sender may encode.

    ``HIGH`` is the full-quality stream shown full-screen; ``LOW`` is
    the reduced layer used for gallery tiles and thumbnails.
    """

    HIGH = "high"
    LOW = "low"


@dataclass(frozen=True)
class ClientBinding:
    """What the platform needs to know about a joining client."""

    name: str
    host: Host
    media_port: int

    @property
    def media_address(self) -> Address:
        """Where this client receives media."""
        return Address(self.host.ip, self.media_port)


@dataclass(frozen=True)
class ViewContext:
    """A receiver's UI state, which drives its subscriptions.

    Attributes:
        view_mode: ``"fullscreen"``, ``"gallery"`` or ``"audio-only"``
            (screen off).
        device: ``"vm"``, ``"mobile-highend"`` or ``"mobile-lowend"``.
    """

    view_mode: str = "fullscreen"
    device: str = "vm"

    def __post_init__(self) -> None:
        if self.view_mode not in ("fullscreen", "gallery", "audio-only"):
            raise PlatformError(f"unknown view mode: {self.view_mode!r}")


@dataclass(frozen=True)
class RelayTiming:
    """Forwarding latency character of a platform's relays.

    Attributes:
        base_delay_s: Fixed per-packet forwarding delay.
        jitter_scale_s: Scale of exponential per-packet jitter.
        session_load_scale_s: Mean of the per-(relay, session)
            exponential extra delay modelling load variation (the
            paper's explanation for Meet's high lag despite low RTTs).
        probe_delay_s: Reply latency for RTT probes; probes bypass the
            media forwarding queue, so this is small and load-free.
    """

    base_delay_s: float = 0.008
    jitter_scale_s: float = 0.001
    session_load_scale_s: float = 0.0
    probe_delay_s: float = 0.0003


class ServiceRelay:
    """The media-forwarding service bound at a relay host's port.

    One relay instance can serve many sessions (Meet endpoints are
    sticky across sessions); routes are registered per flow.  The relay

    * answers ``PROBE`` packets immediately (tcpping's RTT target),
    * forwards media packets per its route table after a processing
      delay (base + per-session load + jitter),
    * forwards ``FEEDBACK`` packets toward the flow's sender.
    """

    def __init__(self, host: Host, port: int, timing: RelayTiming, rng) -> None:
        self.host = host
        self.port = port
        self.timing = timing
        self.rng = rng
        self._routes: Dict[str, List[Tuple[Address, float]]] = {}
        self._feedback_next_hop: Dict[str, Address] = {}
        self._session_load: Dict[str, float] = {}
        self.packets_forwarded = 0
        self.probes_answered = 0
        host.bind(port, self._handle)

    @classmethod
    def install(cls, host: Host, port: int, timing: RelayTiming, rng) -> "ServiceRelay":
        """Bind a relay at ``host:port``, reusing an existing instance."""
        existing = getattr(host, "_service_relay", None)
        if existing is not None:
            if existing.port != port:
                raise PlatformError(
                    f"{host.name} already relays on port {existing.port}"
                )
            return existing
        relay = cls(host, port, timing, rng)
        host._service_relay = relay
        return relay

    @property
    def address(self) -> Address:
        """The relay's service address."""
        return self.host.address(self.port)

    # ----------------------------------------------------------------- #
    # Route management (called by session wiring).
    # ----------------------------------------------------------------- #

    def set_session_load(self, session_id: str, load_s: float) -> None:
        """Record the per-session load delay of this relay."""
        self._session_load[session_id] = load_s

    def register_route(self, flow_id: str, destinations) -> None:
        """Route a media flow to destinations.

        Each destination is an :class:`Address` or an
        ``(Address, fraction)`` pair; the fraction is the share of the
        flow's packets forwarded to that destination (an SFU's
        per-subscriber thinning -- how the relay delivers a lower rate
        to, e.g., a low-end phone without a separate encoding).
        """
        normalised: List[Tuple[Address, float]] = []
        for destination in destinations:
            if isinstance(destination, tuple):
                address, fraction = destination
            else:
                address, fraction = destination, 1.0
            if not 0.0 < fraction <= 1.0:
                raise PlatformError(f"forward fraction out of range: {fraction}")
            normalised.append((address, fraction))
        self._routes[flow_id] = normalised

    def register_feedback_route(self, flow_id: str, next_hop: Address) -> None:
        """Route feedback for a flow toward its sender."""
        self._feedback_next_hop[flow_id] = next_hop

    def unregister_session(self, session_id: str) -> None:
        """Drop all routes belonging to one session."""
        prefix = session_id + "|"
        self._routes = {
            k: v for k, v in self._routes.items() if not k.startswith(prefix)
        }
        self._feedback_next_hop = {
            k: v
            for k, v in self._feedback_next_hop.items()
            if not k.startswith(prefix)
        }
        self._session_load.pop(session_id, None)

    # ----------------------------------------------------------------- #
    # Packet handling.
    # ----------------------------------------------------------------- #

    def _handle(self, packet: Packet, host: Host) -> None:
        if packet.kind is PacketKind.PROBE:
            self.probes_answered += 1
            reply = packet.reply_template(
                payload_bytes=20, kind=PacketKind.PROBE_REPLY
            )
            host.network.simulator.schedule(
                self.timing.probe_delay_s, host.send, reply
            )
            return
        if packet.kind is PacketKind.FEEDBACK:
            next_hop = self._feedback_next_hop.get(packet.flow_id)
            if next_hop is not None:
                host.send(packet.forwarded_to(self.address, next_hop))
            return
        if packet.kind is PacketKind.SIGNALING:
            return  # joins/leaves are acknowledged implicitly
        destinations = self._routes.get(packet.flow_id)
        if not destinations:
            return
        session_id = packet.flow_id.split("|", 1)[0]
        delay = (
            self.timing.base_delay_s
            + self._session_load.get(session_id, 0.0)
            + float(self.rng.exponential(self.timing.jitter_scale_s))
        )
        host.network.simulator.schedule(
            delay, self._forward, packet, list(destinations)
        )

    def _forward(
        self, packet: Packet, destinations: List[Tuple[Address, float]]
    ) -> None:
        for destination, fraction in destinations:
            if destination.ip == packet.src.ip:
                continue  # never reflect a flow back to its origin
            if fraction < 1.0 and self.rng.random() >= fraction:
                continue  # thinned subscription
            self.packets_forwarded += 1
            self.host.send(packet.forwarded_to(self.address, destination))


def video_flow_id(session_id: str, sender: str, layer: StreamLayer) -> str:
    """Canonical flow id of a sender's video layer."""
    return f"{session_id}|{sender}|v-{layer.value}"


def audio_flow_id(session_id: str, sender: str) -> str:
    """Canonical flow id of a sender's audio."""
    return f"{session_id}|{sender}|a"


@dataclass
class SessionWiring:
    """Everything a client needs to participate in a wired session.

    Produced by :meth:`PlatformModel.create_session`.
    """

    session_id: str
    platform_name: str
    udp_port: int
    p2p: bool
    context: RateContext
    service_address: Dict[str, Address]
    relay_hosts: List[Host] = field(default_factory=list)
    relays: List[ServiceRelay] = field(default_factory=list)
    subscriptions: Dict[str, Dict[str, List[StreamLayer]]] = field(
        default_factory=dict
    )
    client_names: List[str] = field(default_factory=list)
    host_name: str = ""

    def service_endpoint_key(self, client_name: str) -> EndpointKey:
        """The endpoint this client's monitor will discover and probe."""
        address = self.service_address[client_name]
        return EndpointKey(address.ip, address.port, "udp")

    def layers_needed(self, sender: str) -> Set[StreamLayer]:
        """Which simulcast layers any receiver subscribes to."""
        needed: Set[StreamLayer] = set()
        for _receiver, by_sender in self.subscriptions.items():
            needed.update(by_sender.get(sender, []))
        return needed

    def video_flow(self, sender: str, layer: StreamLayer) -> str:
        """Flow id of a sender's video layer in this session."""
        return video_flow_id(self.session_id, sender, layer)

    def audio_flow(self, sender: str) -> str:
        """Flow id of a sender's audio in this session."""
        return audio_flow_id(self.session_id, sender)

    def close(self) -> None:
        """Unregister this session's routes from every relay."""
        for relay in self.relays:
            relay.unregister_session(self.session_id)


class PlatformModel(abc.ABC):
    """Abstract videoconferencing platform.

    Subclasses define the constants table (rates, ports, sites) and the
    endpoint-selection strategy; the base class implements session
    wiring mechanics shared by all three platforms.
    """

    #: Canonical platform name; overridden by subclasses.
    name: str = "abstract"
    #: Designated media port (Section 4.2).
    udp_port: int = 0
    #: Audio bitrate in bps (Section 4.4 footnote 5).
    audio_bps: float = 40_000.0
    #: Loss-concealment behaviour of the audio decoder.
    audio_concealment: str = "repeat"
    #: Relay forwarding latency character.
    relay_timing: RelayTiming = RelayTiming()
    #: Congestion adaptation personality.
    adaptation: AdaptationPolicy = AdaptationPolicy()
    #: Fraction of the wire rate that buys quality.  The paper finds
    #: Zoom "delivers the best QoE in the most bandwidth-efficient
    #: fashion" while Webex's highest-of-the-three rate does not yield
    #: proportionally better quality (Section 4.3.1); this factor
    #: models the difference (codec generation, FEC overhead).
    encoder_efficiency: float = 1.0

    def __init__(
        self,
        registry: Optional[RegionRegistry] = None,
        seed: int = 0,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self._seed = seed
        self._network: Optional[Network] = None
        self._directory: Optional[EndpointDirectory] = None
        self._session_counter = 0
        self.rng = np.random.default_rng(seed)

    # ----------------------------------------------------------------- #
    # Attachment.
    # ----------------------------------------------------------------- #

    def attach(self, network: Network) -> None:
        """Bind this platform to a network (allocates its directory)."""
        self._network = network
        self._directory = EndpointDirectory(
            self.name, network, self.rng, self.registry
        )

    @property
    def network(self) -> Network:
        """The attached network (raises if :meth:`attach` not called)."""
        if self._network is None:
            raise PlatformError(f"{self.name}: attach() a network first")
        return self._network

    @property
    def directory(self) -> EndpointDirectory:
        """The endpoint directory (raises if not attached)."""
        if self._directory is None:
            raise PlatformError(f"{self.name}: attach() a network first")
        return self._directory

    # ----------------------------------------------------------------- #
    # Platform-specific hooks.
    # ----------------------------------------------------------------- #

    @abc.abstractmethod
    def video_rates(self, context: RateContext) -> Dict[StreamLayer, float]:
        """Target bitrates per simulcast layer for a sender."""

    @abc.abstractmethod
    def _select_relays(
        self, clients: List[ClientBinding], host_name: str, session_id: str
    ) -> Dict[str, ServiceRelay]:
        """Map each client name to the relay it attaches to."""

    def session_rate_multiplier(self, context: RateContext) -> float:
        """Per-session rate variation factor (Meet overrides this)."""
        return 1.0

    def uses_p2p(self, num_participants: int) -> bool:
        """Whether this session streams peer-to-peer (Zoom at N=2)."""
        return False

    def thumbnails_in_fullscreen(self) -> int:
        """LOW-layer thumbnails shown alongside a full-screen stream."""
        return 0

    def forward_fraction(
        self, receiver_view: ViewContext, layer: StreamLayer, context: RateContext
    ) -> float:
        """Share of a layer's packets the relay forwards to a receiver.

        1.0 means the full stream.  Platforms override this to model
        per-subscriber thinning: Webex delivers roughly half the rate
        to low-end phones, Zoom's pre-buffered background streams in
        full-screen mode are heavily throttled.
        """
        return 1.0

    def supports_gallery_subscription(self) -> bool:
        """Whether gallery view switches subscriptions to LOW tiles."""
        return True

    #: Maximum simultaneous video tiles any client UI renders
    #: (Section 5: "show videos for up to four concurrent participants").
    MAX_TILES = 4

    # ----------------------------------------------------------------- #
    # Rate state for senders.
    # ----------------------------------------------------------------- #

    def make_sender_state(self, context: RateContext) -> SenderRateState:
        """Adaptive rate state seeded from the context rate."""
        rates = self.video_rates(context)
        return SenderRateState(rates[StreamLayer.HIGH], self.adaptation)

    # ----------------------------------------------------------------- #
    # Subscriptions.
    # ----------------------------------------------------------------- #

    def subscriptions_for(
        self,
        receiver: str,
        view: ViewContext,
        senders: List[str],
        display: str,
    ) -> Dict[str, List[StreamLayer]]:
        """Which layers ``receiver`` gets from each remote sender.

        Encodes the UI behaviour of Section 5: full screen shows the
        displayed participant's HIGH layer (plus platform-specific
        thumbnails), gallery shows LOW tiles of up to
        :data:`MAX_TILES` participants, audio-only subscribes to no
        video at all.
        """
        remote = [s for s in senders if s != receiver]
        plan: Dict[str, List[StreamLayer]] = {}
        if view.view_mode == "audio-only":
            return plan
        if view.view_mode == "gallery" and self.supports_gallery_subscription():
            for sender in remote[: self.MAX_TILES]:
                plan[sender] = [StreamLayer.LOW]
            return plan
        # Full screen (or gallery on platforms without tile support,
        # e.g. Meet, where "zooming out" leaves the layout unchanged).
        shown = display if display in remote else (remote[0] if remote else None)
        if shown is None:
            return plan
        plan[shown] = [StreamLayer.HIGH]
        others = [s for s in remote if s != shown]
        for sender in others[: self.thumbnails_in_fullscreen()]:
            plan.setdefault(sender, []).append(StreamLayer.LOW)
        return plan

    # ----------------------------------------------------------------- #
    # Session creation.
    # ----------------------------------------------------------------- #

    def create_session(
        self,
        clients: List[ClientBinding],
        host_name: str,
        context: RateContext,
        views: Optional[Dict[str, ViewContext]] = None,
    ) -> SessionWiring:
        """Wire a meeting session across the attached network.

        Args:
            clients: All participants (including the meeting host).
            host_name: Name of the meeting host client.
            context: Session-level rate context.
            views: Optional per-client UI state; defaults to
                full-screen VMs displaying the host's stream.

        Raises:
            SessionError: On fewer than two clients, a host not in the
                list, or duplicate client names.
        """
        if len(clients) < 2:
            raise SessionError("a session needs at least two clients")
        names = [c.name for c in clients]
        if len(set(names)) != len(names):
            raise SessionError(f"duplicate client names: {names}")
        if host_name not in names:
            raise SessionError(f"host {host_name!r} not among clients")

        self._session_counter += 1
        session_id = f"{self.name}-s{self._session_counter}"
        views = views or {}
        default_view = ViewContext()

        subscriptions = {
            c.name: self.subscriptions_for(
                c.name, views.get(c.name, default_view), names, host_name
            )
            for c in clients
        }

        view_of = {
            c.name: views.get(c.name, default_view) for c in clients
        }
        if self.uses_p2p(len(clients)):
            return self._wire_p2p(
                session_id, clients, host_name, context, subscriptions
            )
        return self._wire_relayed(
            session_id, clients, host_name, context, subscriptions, view_of
        )

    def _wire_p2p(
        self,
        session_id: str,
        clients: List[ClientBinding],
        host_name: str,
        context: RateContext,
        subscriptions: Dict[str, Dict[str, List[StreamLayer]]],
    ) -> SessionWiring:
        """Two-party direct wiring (Zoom N=2): peers stream directly."""
        first, second = clients[0], clients[1]
        return SessionWiring(
            session_id=session_id,
            platform_name=self.name,
            udp_port=self.udp_port,
            p2p=True,
            context=context,
            service_address={
                first.name: second.media_address,
                second.name: first.media_address,
            },
            subscriptions=subscriptions,
            client_names=[c.name for c in clients],
            host_name=host_name,
        )

    def _wire_relayed(
        self,
        session_id: str,
        clients: List[ClientBinding],
        host_name: str,
        context: RateContext,
        subscriptions: Dict[str, Dict[str, List[StreamLayer]]],
        view_of: Dict[str, ViewContext],
    ) -> SessionWiring:
        """General relayed wiring through platform endpoints."""
        relay_of = self._select_relays(clients, host_name, session_id)
        missing = [c.name for c in clients if c.name not in relay_of]
        if missing:
            raise SessionError(f"no relay selected for clients: {missing}")

        relays = list({id(r): r for r in relay_of.values()}.values())
        for relay in relays:
            load = 0.0
            if self.relay_timing.session_load_scale_s > 0:
                load = float(
                    self.rng.exponential(self.relay_timing.session_load_scale_s)
                )
            relay.set_session_load(session_id, load)

        bindings = {c.name: c for c in clients}
        names = [c.name for c in clients]

        for sender in names:
            home = relay_of[sender]
            # Who subscribes to each of this sender's flows?
            for layer in StreamLayer:
                flow = video_flow_id(session_id, sender, layer)
                receivers = {
                    n: self.forward_fraction(view_of[n], layer, context)
                    for n in names
                    if n != sender and layer in subscriptions[n].get(sender, [])
                }
                self._register_fanout(
                    flow, sender, receivers, relay_of, bindings, home
                )
            audio_flow = audio_flow_id(session_id, sender)
            audio_receivers = {n: 1.0 for n in names if n != sender}
            self._register_fanout(
                audio_flow, sender, audio_receivers, relay_of, bindings, home
            )
            # Feedback about this sender's flows goes back to the sender.
            for layer in StreamLayer:
                flow = video_flow_id(session_id, sender, layer)
                self._register_feedback(flow, sender, relay_of, bindings, home)

        return SessionWiring(
            session_id=session_id,
            platform_name=self.name,
            udp_port=self.udp_port,
            p2p=False,
            context=context,
            service_address={
                name: relay_of[name].address for name in names
            },
            relay_hosts=[r.host for r in relays],
            relays=relays,
            subscriptions=subscriptions,
            client_names=names,
            host_name=host_name,
        )

    def _register_fanout(
        self,
        flow: str,
        sender: str,
        receivers: Dict[str, float],
        relay_of: Dict[str, ServiceRelay],
        bindings: Dict[str, ClientBinding],
        home: ServiceRelay,
    ) -> None:
        """Install routes: home relay -> (peer relays, local clients).

        ``receivers`` maps receiver names to forward fractions; the
        fraction is applied at the relay that owns the receiver.
        """
        home_destinations: List[Tuple[Address, float]] = []
        by_peer_relay: Dict[int, Tuple[ServiceRelay, List[Tuple[Address, float]]]] = {}
        for receiver, fraction in receivers.items():
            relay = relay_of[receiver]
            client_address = bindings[receiver].media_address
            if relay is home:
                home_destinations.append((client_address, fraction))
            else:
                entry = by_peer_relay.setdefault(id(relay), (relay, []))
                entry[1].append((client_address, fraction))
        for relay, client_addresses in by_peer_relay.values():
            home_destinations.append((relay.address, 1.0))
            relay.register_route(flow, client_addresses)
        home.register_route(flow, home_destinations)

    def _register_feedback(
        self,
        flow: str,
        sender: str,
        relay_of: Dict[str, ServiceRelay],
        bindings: Dict[str, ClientBinding],
        home: ServiceRelay,
    ) -> None:
        """Feedback converges on the sender via its home relay."""
        sender_address = bindings[sender].media_address
        home.register_feedback_route(flow, sender_address)
        for relay in {id(r): r for r in relay_of.values()}.values():
            if relay is not home:
                relay.register_feedback_route(flow, home.address)
