"""Webex service model.

Observed behaviour reproduced here (paper sections in parentheses):

* single service endpoint per session on UDP/9000; endpoints nearly
  always change across sessions -- 19.5 distinct over 20 (4.2),
* **all** free-tier sessions relay via infrastructure in US-east, even
  sessions among US-west or European clients; this is the "artificial
  detour" behind Finding-1/2 (US-west lag shifted +30 ms, European
  RTTs pinned at trans-Atlantic values, Figs. 9b/10b/11b) (4.2),
* the highest multi-user data rate of the three systems, virtually
  constant across sessions; low-motion sessions halve the rate (4.3.1),
* device-adaptive mobile rates: ~1.76 Mbps on the S10 vs ~0.9 Mbps on
  the J3; gallery view splits a ~0.55 Mbps budget across tiles, so
  tiles degrade as N grows (5, Table 4),
* audio at ~45 Kbps with fragile (zero-fill) concealment: MOS
  deteriorates below 500 Kbps caps (4.4),
* near-absent bandwidth adaptation: under caps of 1 Mbps or less the
  video "frequently stalls and even completely disappears" (4.4).
"""

from __future__ import annotations

from typing import Dict, List

from ..net.address import WEBEX_UDP_PORT
from .base import (
    ClientBinding,
    PlatformModel,
    RelayTiming,
    ServiceRelay,
    StreamLayer,
)
from .ratecontrol import AdaptationPolicy, RateContext

#: The single relay site used for every free-tier session.
RELAY_SITE = "webex-us-east"

#: Observed probability that consecutive sessions reuse an endpoint
#: (19.5 distinct endpoints per 20 sessions).
ENDPOINT_REUSE_PROBABILITY = 0.026

#: Baseline rates in bits/second.
VM_HIGH_MOTION_BPS = 1_800_000.0
VM_LOW_MOTION_FACTOR = 0.52  # "low-motion sessions almost halve"
MOBILE_HIGHEND_BPS = 1_760_000.0
MOBILE_LOWEND_BPS = 900_000.0
#: Total gallery budget split across visible tiles (Table 4); larger
#: galleries get a *smaller* budget -- the paper's "counter-intuitive
#: data rate reduction ... associated with a significant quality
#: degradation" at N >= 6.
GALLERY_BUDGET_BPS = 550_000.0
GALLERY_BUDGET_LARGE_BPS = 450_000.0


class WebexModel(PlatformModel):
    """Webex: US-east-only relays, constant rates, poor adaptation."""

    name = "webex"
    udp_port = WEBEX_UDP_PORT
    audio_bps = 45_000.0
    audio_concealment = "silence"
    relay_timing = RelayTiming(
        base_delay_s=0.008,
        jitter_scale_s=0.0008,  # least lag variance of the three
        session_load_scale_s=0.0,
    )
    adaptation = AdaptationPolicy(
        loss_threshold=0.25,
        recovery_threshold=0.01,
        decrease_factor=0.85,
        increase_factor=1.02,
        floor_bps=1_200_000.0,
        patience_reports=5,
    )
    encoder_efficiency = 0.5

    def video_rates(self, context: RateContext) -> Dict[StreamLayer, float]:
        if context.device == "mobile-highend":
            high = MOBILE_HIGHEND_BPS
            if context.motion == "low":
                high *= VM_LOW_MOTION_FACTOR
        elif context.device == "mobile-lowend":
            high = MOBILE_LOWEND_BPS
        else:
            high = VM_HIGH_MOTION_BPS
            if context.motion == "low":
                high *= VM_LOW_MOTION_FACTOR
        tiles = min(context.num_participants - 1, self.MAX_TILES)
        budget = GALLERY_BUDGET_BPS if tiles <= 2 else GALLERY_BUDGET_LARGE_BPS
        low = budget / max(tiles, 1)
        return {StreamLayer.HIGH: high, StreamLayer.LOW: low}

    def forward_fraction(self, receiver_view, layer, context) -> float:
        """Low-end phones receive roughly half the HIGH-layer rate.

        Table 4: the same Webex session delivers ~1.76 Mbps to the S10
        and ~0.9 Mbps to the J3 -- per-subscriber adaptation the relay
        performs, modelled as forwarding thinning.
        """
        if (
            layer is StreamLayer.HIGH
            and receiver_view.device == "mobile-lowend"
            and context.device.startswith("mobile")
        ):
            return MOBILE_LOWEND_BPS / MOBILE_HIGHEND_BPS
        return 1.0

    def _select_relays(
        self, clients: List[ClientBinding], host_name: str, session_id: str
    ) -> Dict[str, ServiceRelay]:
        relay_host = self.directory.session_relay(
            RELAY_SITE, reuse_probability=ENDPOINT_REUSE_PROBABILITY
        )
        relay = ServiceRelay.install(
            relay_host, self.udp_port, self.relay_timing, self.rng
        )
        return {c.name: relay for c in clients}
