"""Sender-side rate control and bandwidth adaptation policies.

Each platform decides (a) the target video bitrate for a sender given
the session context, and (b) how that target reacts to congestion
feedback.  The paper observes three very different personalities
(Sections 4.3-4.4):

* **Zoom** holds its rate nearly constant across motion levels (5-10 %
  LM/HM difference) and defends quality as caps tighten, then falls off
  a cliff at 250 Kbps -- it will not track arbitrarily low rates.
* **Webex** streams at a virtually constant, highest-of-the-three rate
  and barely adapts; under caps of 1 Mbps or less its video "frequently
  stalls and even completely disappears".
* **Meet** is the most dynamic: very high rate for two-party sessions,
  much lower for multi-party, large per-session fluctuation, and
  graceful degradation under caps.

:class:`SenderRateState` implements the feedback loop; the per-platform
constants live in each :class:`AdaptationPolicy` instance created by
the platform modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigurationError


@dataclass(frozen=True)
class RateContext:
    """Everything a platform looks at when choosing a sender's rate.

    Attributes:
        num_participants: Total clients in the session (the paper's N).
        motion: ``"low"`` or ``"high"`` -- content class of the feed.
            Black-box encoders estimate this from their own output;
            our senders pass the feed's label.
        device: ``"vm"``, ``"mobile-highend"`` or ``"mobile-lowend"``.
        session_index: Index of the session in an experiment, used by
            platforms with per-session rate variation (Meet).
    """

    num_participants: int = 2
    motion: str = "low"
    device: str = "vm"
    session_index: int = 0

    def __post_init__(self) -> None:
        if self.num_participants < 2:
            raise ConfigurationError("a session needs at least 2 participants")
        if self.motion not in ("low", "high"):
            raise ConfigurationError(f"unknown motion class: {self.motion!r}")
        if self.device not in ("vm", "mobile-highend", "mobile-lowend"):
            raise ConfigurationError(f"unknown device class: {self.device!r}")


@dataclass(frozen=True)
class AdaptationPolicy:
    """How a sender's target rate responds to congestion feedback.

    The loop runs on receiver feedback reports (loss fraction over the
    last window).  When smoothed loss exceeds ``loss_threshold`` for
    ``patience_reports`` consecutive reports, the target is multiplied
    by ``decrease_factor`` (bounded below by ``floor_bps``).  When loss
    stays under ``recovery_threshold``, the target climbs back by
    ``increase_factor`` per report toward the context rate.

    A policy with ``decrease_factor=1.0`` never reduces -- Webex's
    near-non-adaptive behaviour is modelled with a factor close to 1
    and very high patience.
    """

    loss_threshold: float = 0.05
    recovery_threshold: float = 0.01
    decrease_factor: float = 0.7
    increase_factor: float = 1.05
    floor_bps: float = 100_000.0
    patience_reports: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.decrease_factor <= 1.0:
            raise ConfigurationError("decrease_factor must be in (0, 1]")
        if self.increase_factor < 1.0:
            raise ConfigurationError("increase_factor must be >= 1")
        if self.floor_bps <= 0:
            raise ConfigurationError("floor_bps must be positive")
        if self.patience_reports < 1:
            raise ConfigurationError("patience_reports must be >= 1")


class SenderRateState:
    """Per-sender adaptive rate: base target + congestion response.

    Loss reports arrive from *every* receiver (reporter); the state
    keeps per-reporter consecutive-congestion counts.  The sender slows
    down when any single receiver stays congested for the policy's
    patience, and only climbs back while its *worst* receiver is clean
    -- one healthy receiver must not mask another's congestion.

    Attributes:
        base_bps: The context rate the platform would use on an
            unconstrained path.
        current_bps: The present target after adaptation.
    """

    def __init__(self, base_bps: float, policy: AdaptationPolicy) -> None:
        if base_bps <= 0:
            raise ConfigurationError("base rate must be positive")
        self.base_bps = float(base_bps)
        self.policy = policy
        self.current_bps = float(base_bps)
        self._congested_reports: dict[str, int] = {}
        self._last_loss: dict[str, float] = {}
        self.decreases = 0
        self.increases = 0

    def on_feedback(
        self, loss_fraction: float, reporter: str = "receiver"
    ) -> Optional[float]:
        """Process one loss report; returns the new target if changed."""
        if not 0.0 <= loss_fraction <= 1.0:
            raise ConfigurationError(f"loss fraction out of range: {loss_fraction}")
        policy = self.policy
        self._last_loss[reporter] = loss_fraction
        if loss_fraction > policy.loss_threshold:
            count = self._congested_reports.get(reporter, 0) + 1
            if count >= policy.patience_reports:
                self._congested_reports[reporter] = 0
                new_rate = max(
                    policy.floor_bps, self.current_bps * policy.decrease_factor
                )
                if new_rate < self.current_bps:
                    self.current_bps = new_rate
                    self.decreases += 1
                    return self.current_bps
                return None
            self._congested_reports[reporter] = count
            return None
        self._congested_reports[reporter] = 0
        worst = max(self._last_loss.values())
        if (
            worst <= policy.recovery_threshold
            and self.current_bps < self.base_bps
        ):
            self.current_bps = min(
                self.base_bps, self.current_bps * policy.increase_factor
            )
            self.increases += 1
            return self.current_bps
        return None
