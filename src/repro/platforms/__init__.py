"""Videoconferencing platform models: Zoom, Webex and Google Meet.

The paper measures the three services as black boxes; every behaviour
it reports is externally observable.  These models reproduce exactly
those observables (and nothing speculative):

* **endpoint architecture** (Fig. 3): Zoom and Webex relay a session
  through a single platform endpoint; Meet connects each client to its
  own geographically-nearby endpoint and relays between endpoints;
  Zoom switches to direct peer-to-peer streaming for two-party calls,
* **designated ports**: UDP/8801 (Zoom), UDP/9000 (Webex), UDP/19305
  (Meet),
* **endpoint churn** (Section 4.2): fresh endpoints nearly every
  session on Zoom/Webex (20 and 19.5 distinct per 20 sessions) versus
  sticky endpoints on Meet (1.8),
* **geographic footprint** (Findings 1-2): US-only infrastructure
  with regional load balancing for Zoom, US-east-only for Webex,
  cross-continental for Meet,
* **rate control** (Figs. 15, 17-19, Table 4): per-platform target
  rates versus session size, motion, device class and view mode, and
  per-platform adaptation policies under bandwidth caps.
"""

from .base import (
    ClientBinding,
    PlatformModel,
    ServiceRelay,
    SessionWiring,
    StreamLayer,
)
from .meet import MeetModel
from .ratecontrol import AdaptationPolicy, RateContext, SenderRateState
from .webex import WebexModel
from .zoom import ZoomModel

#: Registry of platform model factories by canonical name.
PLATFORMS = {
    "zoom": ZoomModel,
    "webex": WebexModel,
    "meet": MeetModel,
}


def make_platform(name: str, **kwargs) -> PlatformModel:
    """Instantiate a platform model by name (``zoom``/``webex``/``meet``)."""
    try:
        factory = PLATFORMS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; choose from {sorted(PLATFORMS)}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "AdaptationPolicy",
    "ClientBinding",
    "MeetModel",
    "PLATFORMS",
    "PlatformModel",
    "RateContext",
    "SenderRateState",
    "ServiceRelay",
    "SessionWiring",
    "StreamLayer",
    "WebexModel",
    "ZoomModel",
    "make_platform",
]
