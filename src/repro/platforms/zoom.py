"""Zoom service model.

Observed behaviour reproduced here (paper sections in parentheses):

* single service endpoint per session on UDP/8801; endpoints change
  (new IP) every session -- 20 distinct endpoints over 20 sessions
  (4.2),
* two-party calls switch to direct peer-to-peer streaming on ephemeral
  ports (4.2, footnote 2),
* US-only relay infrastructure: sessions relay near the meeting
  creator's US region; non-US sessions are load-balanced across
  US sites, producing the three distinct RTT bands of Figs. 10a/11a
  (4.2.2),
* data rates: ~1 Mbps P2P down at N=2, ~0.7 Mbps relayed at N>2, only
  5-10 % lower for low motion; mobile clients stick to a ~750 Kbps
  default; gallery view halves rate via LOW tiles (~165 Kbps each)
  (4.3.1, 5),
* audio at ~90 Kbps with robust concealment: MOS stays flat under caps
  (4.4),
* adaptation defends quality down to a floor of a few hundred Kbps,
  below which quality collapses -- the sudden Figure 17 drop at
  250 Kbps (4.4).
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import PlatformError
from ..net.address import ZOOM_UDP_PORT
from .base import (
    ClientBinding,
    PlatformModel,
    RelayTiming,
    ServiceRelay,
    StreamLayer,
)
from .ratecontrol import AdaptationPolicy, RateContext

#: Relay sites; non-US sessions are balanced across all three.
US_SITES = ("zoom-us-east", "zoom-us-central", "zoom-us-west")

#: Baseline rates in bits/second (see module docstring for sources).
P2P_HIGH_BPS = 1_000_000.0
RELAYED_HIGH_BPS = 700_000.0
MOBILE_HIGH_BPS = 750_000.0
LOW_LAYER_BPS = 165_000.0
#: Low-motion rate discount ("least difference, 5-10%").
LOW_MOTION_FACTOR = 0.93


class ZoomModel(PlatformModel):
    """Zoom: per-session US relays, P2P at N=2, quality-defending."""

    name = "zoom"
    udp_port = ZOOM_UDP_PORT
    audio_bps = 90_000.0
    audio_concealment = "repeat"
    relay_timing = RelayTiming(
        base_delay_s=0.008,
        jitter_scale_s=0.0012,
        session_load_scale_s=0.0,
    )
    adaptation = AdaptationPolicy(
        loss_threshold=0.05,
        recovery_threshold=0.01,
        decrease_factor=0.6,
        increase_factor=1.03,
        floor_bps=150_000.0,
        patience_reports=2,
    )

    def uses_p2p(self, num_participants: int) -> bool:
        return num_participants == 2

    def thumbnails_in_fullscreen(self) -> int:
        # Section 5: full-screen Zoom pre-buffers a couple of extra
        # streams so view switches are instant (+5% rate, +12% CPU).
        return 2

    def forward_fraction(self, receiver_view, layer, context) -> float:
        """Background (pre-buffered) streams are heavily throttled.

        In full-screen mode the extra LOW-layer streams exist only to
        make view switches instant, so the relay forwards them at a
        small fraction of the gallery-tile rate (Table 4 shows only a
        ~5 % rate increase from the buffering).
        """
        if layer is StreamLayer.LOW and receiver_view.view_mode == "fullscreen":
            return 0.25
        return 1.0

    def video_rates(self, context: RateContext) -> Dict[StreamLayer, float]:
        if context.device.startswith("mobile"):
            high = MOBILE_HIGH_BPS
        elif context.num_participants == 2:
            high = P2P_HIGH_BPS
        else:
            high = RELAYED_HIGH_BPS
        if context.motion == "low":
            high *= LOW_MOTION_FACTOR
        return {StreamLayer.HIGH: high, StreamLayer.LOW: LOW_LAYER_BPS}

    def _select_relays(
        self, clients: List[ClientBinding], host_name: str, session_id: str
    ) -> Dict[str, ServiceRelay]:
        host_binding = next(c for c in clients if c.name == host_name)
        location = host_binding.host.location
        # US hosts get a relay near their region; non-US sessions are
        # load-balanced uniformly across the US sites, which is what
        # spreads European RTTs into the three bands of Fig. 10a.
        if self._is_us(location):
            site = self.directory.nearest_site(location, list(US_SITES))
        else:
            site = str(self.rng.choice(list(US_SITES)))
        relay_host = self.directory.session_relay(site, reuse_probability=0.0)
        relay = ServiceRelay.install(
            relay_host, self.udp_port, self.relay_timing, self.rng
        )
        return {c.name: relay for c in clients}

    @staticmethod
    def _is_us(location) -> bool:
        """Continental-US test by longitude/latitude box."""
        return -130.0 <= location.lon <= -60.0 and 20.0 <= location.lat <= 55.0
