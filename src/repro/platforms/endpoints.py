"""Service-endpoint allocation: who relays a session, and from where.

Section 4.2 measures how endpoint identity evolves across sessions:
"out of 20 videoconferencing sessions, a client on Zoom, Webex and Meet
encounters, on average, 20, 19.5 and 1.8 endpoints, respectively.  On
Zoom and Webex, service endpoints almost always change (with different
IP addresses) across different sessions, while, on Meet, a client tends
to stick with one or two endpoints across sessions."

:class:`EndpointDirectory` owns that behaviour: it allocates relay
hosts (new IPs) in the platform's infrastructure sites, optionally
reusing previous allocations with a configurable probability -- high
for Meet's sticky per-client endpoints, near zero for Zoom/Webex's
per-session endpoints.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..errors import PlatformError
from ..net.geo import GeoPoint
from ..net.node import Host
from ..net.regions import RegionRegistry, default_registry
from ..net.routing import Network


class EndpointDirectory:
    """Allocates and recycles relay hosts for one platform.

    One directory lives per (platform, network) pair, so endpoint
    stickiness persists across the sessions of an experiment exactly as
    it does across the paper's 20-session batches.
    """

    def __init__(
        self,
        platform_name: str,
        network: Network,
        rng: np.random.Generator,
        registry: Optional[RegionRegistry] = None,
    ) -> None:
        self.platform_name = platform_name
        self.network = network
        self.rng = rng
        self.registry = registry if registry is not None else default_registry()
        self._counter = 0
        self._last_session_relay: Optional[Host] = None
        self._client_endpoints: Dict[str, Host] = {}
        self.relay_hosts: List[Host] = []

    def _new_relay(self, site_name: str) -> Host:
        """Spin up a fresh relay host (new IP) at an infrastructure site."""
        location = self.registry.site(site_name)
        self._counter += 1
        host = self.network.add_host(
            name=f"{self.platform_name}-ep{self._counter}",
            location=location,
            tier="infra",
        )
        self.relay_hosts.append(host)
        return host

    # ----------------------------------------------------------------- #
    # Per-session relays (Zoom / Webex).
    # ----------------------------------------------------------------- #

    def session_relay(self, site_name: str, reuse_probability: float = 0.0) -> Host:
        """A relay for one session, almost always at a fresh address.

        Args:
            site_name: Infrastructure site to allocate in.
            reuse_probability: Chance of handing back the previous
                session's relay instead of a new one (Webex's 19.5
                distinct endpoints per 20 sessions come from a small
                non-zero value here).
        """
        if not 0.0 <= reuse_probability < 1.0:
            raise PlatformError(
                f"reuse probability out of range: {reuse_probability}"
            )
        previous = self._last_session_relay
        if (
            previous is not None
            and reuse_probability > 0.0
            and self.rng.random() < reuse_probability
        ):
            return previous
        relay = self._new_relay(site_name)
        self._last_session_relay = relay
        return relay

    # ----------------------------------------------------------------- #
    # Per-client sticky endpoints (Meet).
    # ----------------------------------------------------------------- #

    def client_endpoint(
        self,
        client_name: str,
        client_location: GeoPoint,
        site_names: List[str],
        churn_probability: float = 0.04,
    ) -> Host:
        """The (sticky) endpoint serving one client.

        The first call allocates an endpoint at the site nearest to the
        client; later calls return the same endpoint except with
        ``churn_probability``, when the platform migrates the client to
        a fresh instance at the same site (Meet's ~1.8 endpoints per
        20 sessions corresponds to churn ~0.04).
        """
        if not site_names:
            raise PlatformError("no candidate sites for client endpoint")
        existing = self._client_endpoints.get(client_name)
        if existing is not None and self.rng.random() >= churn_probability:
            return existing
        site = self.nearest_site(client_location, site_names)
        endpoint = self._new_relay(site)
        self._client_endpoints[client_name] = endpoint
        return endpoint

    def nearest_site(self, location: GeoPoint, site_names: List[str]) -> str:
        """The candidate site geographically closest to a location."""
        if not site_names:
            raise PlatformError("no candidate sites given")
        return min(
            site_names,
            key=lambda name: self.registry.site(name).distance_km(location),
        )
