"""Figures 12, 14, 15 and 16: video QoE and data rates vs session size.

Regenerates the QoE grids: PSNR/SSIM/VIFp per (platform, motion, N) in
the US (Fig. 12), the low-to-high-motion degradation (Fig. 14), the
upload/download rates (Fig. 15), and the European high-motion grid
(Fig. 16), asserting the paper's orderings.
"""

import numpy as np
import pytest

from repro.analysis.tables import TextTable
from repro.experiments.qoe_study import (
    EU_ROSTER,
    US_ROSTER,
    degradation_table,
    run_qoe_grid,
)

from .conftest import run_once


@pytest.fixture(scope="module")
def us_grid():
    from .conftest import BENCH_SCALE

    return run_qoe_grid(
        participant_counts=(2, 4),
        roster=US_ROSTER,
        scale=BENCH_SCALE,
        compute_vifp=True,
    )


def render_grid(cells):
    table = TextTable(
        ["Platform", "Motion", "N", "PSNR", "SSIM", "VIFp",
         "Up Mbps", "Down Mbps"]
    )
    for cell in cells:
        table.add_row(
            [
                cell.platform,
                cell.motion,
                cell.num_participants,
                f"{cell.psnr_mean:.1f}",
                f"{cell.ssim_mean:.3f}",
                f"{cell.vifp_mean:.3f}" if cell.vifp_mean == cell.vifp_mean
                else "--",
                f"{cell.upload_mbps:.2f}",
                f"{cell.download_mbps:.2f}",
            ]
        )
    return table.render()


def by_key(cells):
    return {
        (c.platform, c.motion, c.num_participants): c for c in cells
    }


def test_fig12_qoe_us(benchmark, emit, us_grid):
    cells = run_once(benchmark, lambda: us_grid)
    emit("Figure 12: video QoE metrics (US)", render_grid(cells))
    grid = by_key(cells)

    for platform in ("zoom", "webex", "meet"):
        # Low motion always beats high motion, every metric (Fig. 12).
        for n in (2, 4):
            low, high = grid[(platform, "low", n)], grid[(platform, "high", n)]
            assert low.psnr_mean > high.psnr_mean
            assert low.ssim_mean > high.ssim_mean
            assert low.vifp_mean > high.vifp_mean
    # Meet's two-party QoE boost disappears at N>2 (Section 4.3.1).
    assert (
        grid[("meet", "low", 2)].psnr_mean
        > grid[("meet", "low", 4)].psnr_mean
    )


def test_fig14_degradation(benchmark, emit, us_grid):
    cells = run_once(benchmark, lambda: us_grid)
    table = degradation_table(cells)
    rendered = TextTable(["Platform", "N", "dPSNR", "dSSIM", "dVIFp"])
    for (platform, n), deltas in sorted(table.items()):
        rendered.add_row(
            [platform, n, f"{deltas['psnr']:.1f}",
             f"{deltas['ssim']:.3f}", f"{deltas['vifp']:.3f}"]
        )
    emit("Figure 14: QoE reduction low -> high motion (US)",
         rendered.render())

    # Degradation significant enough to drop a MOS level: the paper's
    # reading of Fig. 14 (PSNR drops of ~4-10 dB).
    for (platform, n), deltas in table.items():
        assert deltas["psnr"] > 2.0, (platform, n)
        assert deltas["ssim"] > 0.02, (platform, n)


def test_fig15_data_rates(benchmark, emit, us_grid):
    cells = run_once(benchmark, lambda: us_grid)
    grid = by_key(cells)
    table = TextTable(["Platform", "Motion", "N", "Upload", "Download"])
    for cell in cells:
        table.add_row(
            [cell.platform, cell.motion, cell.num_participants,
             f"{cell.upload_mbps:.2f}", f"{cell.download_mbps:.2f}"]
        )
    emit("Figure 15: upload/download data rates (US)", table.render())

    # Webex: highest multi-user rate, low motion halves it (4.3.1).
    webex_high = grid[("webex", "high", 4)].download_mbps
    webex_low = grid[("webex", "low", 4)].download_mbps
    assert webex_high > grid[("zoom", "high", 4)].download_mbps
    assert webex_high > grid[("meet", "high", 4)].download_mbps
    assert webex_low < 0.75 * webex_high

    # Zoom: least low/high difference; P2P (N=2) above relayed (N=4).
    zoom_low = grid[("zoom", "low", 4)].download_mbps
    zoom_high = grid[("zoom", "high", 4)].download_mbps
    assert zoom_low > 0.7 * zoom_high
    assert (
        grid[("zoom", "low", 2)].download_mbps
        > grid[("zoom", "low", 4)].download_mbps
    )

    # Meet: big two-party rate, much lower multi-party rate.
    assert (
        grid[("meet", "low", 2)].download_mbps
        > 1.5 * grid[("meet", "low", 4)].download_mbps
    )


def test_fig16_qoe_europe(benchmark, emit):
    from .conftest import BENCH_SCALE

    def run():
        return run_qoe_grid(
            motions=("high",),
            participant_counts=(3,),
            roster=EU_ROSTER,
            scale=BENCH_SCALE,
            compute_vifp=True,
        )

    cells = run_once(benchmark, run)
    emit("Figure 16: video QoE metrics (Europe, high motion)",
         render_grid(cells))

    grid = by_key(cells)
    # All three deliver comparable European QoE; Meet holds a slight
    # edge or parity thanks to its in-continent endpoints (4.3.2).
    meet = grid[("meet", "high", 3)]
    for platform in ("zoom", "webex"):
        other = grid[(platform, "high", 3)]
        assert meet.psnr_mean > other.psnr_mean - 6.0
