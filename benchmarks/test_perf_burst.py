"""Burst event core: bulk-commit vs per-packet throughput guard.

The burst event core (PR 8, :mod:`repro.net.burst` +
:meth:`repro.net.routing.Network.transmit_train`) collapses a whole
homogeneous packet train into one array-level commit: vectorised
departures/arrivals/deliveries, block captures, a single receiver
handoff, zero per-packet heap events.  This guard runs the pinned
packet-path workload three ways -- burst-committed train, fused
per-packet fast lane, forced slow path -- and asserts the properties
that are stable on any hardware:

* the train executes in exactly ONE simulator event (deterministic),
* the bulk commit beats the fused per-packet lane by a wide wall-clock
  margin in the same process (the measured gap is >50x; the floors
  below keep the guard meaningful without flaking on shared CI).

The ISSUE target -- burst mode at >= 4x the PR 6 fused-vs-slow ratio
(1.302), i.e. >= 5.21x the forced slow path -- is asserted against the
slow run directly.  Absolute numbers live in ``BENCH_pr8.json``.
"""

from __future__ import annotations

from repro.bench import _packet_path_burst_once, _packet_path_once

#: Workload size, matching test_perf_packet_path.py.
PACKETS = 40_000

#: Floor on burst wall-clock vs the fused per-packet lane.  Measured
#: ~100x; 4x keeps the guard far from flake territory.
MIN_SPEEDUP_VS_FUSED = 4.0

#: Floor on burst vs the forced slow path: 4x the PR 6 fused baseline
#: ratio of 1.302 (the ISSUE acceptance bar).  Measured ~145x.
MIN_SPEEDUP_VS_SLOW = 4.0 * 1.302


def test_burst_commit_is_one_event():
    result = _packet_path_burst_once(2_000)
    # The only heap event is the emit that builds and commits the
    # train; every departure/arrival/delivery is array arithmetic.
    assert result["events"] == 1
    assert result["trains"] == 1
    assert result["packets"] == 2_000


def test_burst_beats_fused_and_slow_paths():
    burst_wall = min(
        _packet_path_burst_once(PACKETS)["wall_s"] for _ in range(3)
    )
    fused_wall = min(
        _packet_path_once(PACKETS, fast_lane=True)["wall_s"]
        for _ in range(3)
    )
    slow_wall = min(
        _packet_path_once(PACKETS, fast_lane=False)["wall_s"]
        for _ in range(3)
    )
    vs_fused = fused_wall / burst_wall
    vs_slow = slow_wall / burst_wall
    assert vs_fused >= MIN_SPEEDUP_VS_FUSED, (
        f"burst only {vs_fused:.2f}x the fused lane "
        f"(burst {burst_wall:.4f}s vs fused {fused_wall:.4f}s)"
    )
    assert vs_slow >= MIN_SPEEDUP_VS_SLOW, (
        f"burst only {vs_slow:.2f}x the forced slow path "
        f"(burst {burst_wall:.4f}s vs slow {slow_wall:.4f}s)"
    )
