"""Figure 2: the video-lag measurement trace.

Regenerates the sent/received packet-size-over-time picture for one
flash session and checks the detector's structural properties: periodic
big-packet bursts on both sides, separated by quiescent periods, and a
positive sender->receiver shift.
"""

import numpy as np

from repro.core.lag import LagDetector
from repro.core.session import SessionConfig
from repro.core.testbed import Testbed, TestbedConfig
from repro.net.capture import Direction

from .conftest import run_once


def test_fig02_lag_trace(benchmark, emit, scale):
    def run():
        testbed = Testbed(TestbedConfig(seed=scale.seed))
        testbed.add_vm("US-East")
        testbed.add_vm("US-West")
        config = SessionConfig(
            duration_s=scale.lag_session_duration_s,
            feed="flash",
            pad_fraction=0.0,
            content_spec=scale.content_spec,
            probes=False,
            gop_size=600,
        )
        artifacts = testbed.run_session(
            "webex", ["US-East", "US-West"], "US-East", config
        )
        sent = artifacts.captures["US-East"].time_size_series(Direction.OUT)
        received = artifacts.captures["US-West"].time_size_series(Direction.IN)
        return sent, received

    sent, received = run_once(benchmark, run)

    detector = LagDetector()
    sent_onsets = detector.burst_onsets(sent)
    received_onsets = detector.burst_onsets(received)
    matches = detector.match_bursts(sent_onsets, received_onsets)

    lines = [
        f"sent packets: {len(sent)}, received packets: {len(received)}",
        f"sender burst onsets  : {[round(t, 2) for t in sent_onsets]}",
        f"receiver burst onsets: {[round(t, 2) for t in received_onsets]}",
        f"matched lags (ms)    : {[round(m.lag_ms, 1) for m in matches]}",
    ]
    emit("Figure 2: video lag measurement", "\n".join(lines))

    # Two-second periodicity of the flash feed.
    gaps = np.diff(sent_onsets)
    assert np.allclose(gaps, 2.0, atol=0.2)
    # Roughly one burst pair per flash, all with plausible lag.
    assert len(matches) >= len(sent_onsets) - 2
    assert all(0 < m.lag_ms < 150 for m in matches)
