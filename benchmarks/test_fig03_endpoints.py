"""Figure 3 + Section 4.2 endpoint churn statistics.

Regenerates the service-endpoint architecture comparison: one shared
endpoint per session on Zoom/Webex versus per-client distributed
endpoints on Meet; fresh endpoints nearly every session on Zoom/Webex
(the paper's 20 and 19.5 distinct endpoints over 20 sessions) versus
sticky endpoints on Meet (1.8); and Zoom's two-party peer-to-peer mode.
"""

from repro.analysis.tables import TextTable
from repro.experiments.endpoint_study import p2p_check, run_endpoint_study

from .conftest import run_once


def test_fig03_endpoint_architecture(benchmark, emit, scale):
    def run():
        results = {}
        for platform in ("zoom", "webex", "meet"):
            results[platform] = run_endpoint_study(
                platform, sessions=10, scale=scale
            )
        return results

    results = run_once(benchmark, run)

    table = TextTable(
        ["Platform", "Endpoints/session", "Distinct per client (10 sess.)",
         "Paper (20 sess.)", "Port"]
    )
    per_session = {}
    for platform, result in results.items():
        sessions = result.endpoints_per_session()
        per_session[platform] = sessions
        paper = {"zoom": "20", "webex": "19.5", "meet": "1.8"}[platform]
        table.add_row(
            [
                platform,
                f"{min(sessions)}-{max(sessions)}",
                f"{result.mean_endpoints_per_client():.1f}",
                paper,
                sorted(result.ports),
            ]
        )
    emit("Figure 3: service endpoint architecture", table.render())

    # Zoom/Webex: single relay per session; Meet: one per client site.
    assert all(n == 1 for n in per_session["zoom"])
    assert all(n == 1 for n in per_session["webex"])
    assert all(n >= 2 for n in per_session["meet"])
    # Churn: fresh endpoints vs sticky endpoints.
    assert results["zoom"].mean_endpoints_per_client() == 10.0
    assert results["webex"].mean_endpoints_per_client() >= 8.5
    assert results["meet"].mean_endpoints_per_client() <= 3.0
    # Designated ports.
    assert results["zoom"].ports == {8801}
    assert results["webex"].ports == {9000}
    assert results["meet"].ports == {19305}
    # Footnote 2: two-party Zoom streams peer-to-peer.
    assert p2p_check(scale=scale)
