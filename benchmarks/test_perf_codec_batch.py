"""Codec batching engine: batched vs per-frame throughput guards.

PR 5's batching engine runs the audio codec's DCT + quantiser fit over
a whole ``(frames, samples)`` matrix and gathers video work into
stacked block transforms (see :mod:`repro.media.batching`).  This
guard runs both paths on the same signal and asserts what is stable on
any hardware:

* the batched audio encoder is bit-identical to the per-frame loop
  AND measurably faster (the vectorised 24-probe bisection replaces
  ``frames x probes`` tiny numpy calls) -- measured ~6-8x, gated
  generously at 2x,
* the video burst entry points stay bit-identical and within noise of
  the loop (plane-sized transforms already amortise pocketfft; the
  guard catches the batch path going pathologically slower).

Run with ``pytest benchmarks/test_perf_codec_batch.py``; tracked
absolute numbers live in ``BENCH_pr5.json`` (``repro bench``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.media.audio import SpeechLikeSource
from repro.media.audio_codec import AudioCodec, AudioCodecConfig
from repro.media.feeds import LowMotionFeed
from repro.media.frames import FrameSpec
from repro.media.video_codec import VideoCodec, VideoCodecConfig, VideoDecoder

#: Audio workload: 5 s of speech = 250 codec frames per run.
AUDIO_SECONDS = 5.0

#: The batched audio encode must beat the loop by at least this factor
#: (measured ~6-8x; 2x keeps the guard meaningful without flaking).
MIN_AUDIO_SPEEDUP = 2.0

#: The video burst paths must not fall below this fraction of the
#: per-frame loop's throughput (they hover around parity by design).
MIN_VIDEO_RATIO = 0.5

VIDEO_SPEC = FrameSpec(128, 96, 12)
VIDEO_FRAMES = 48


def _best_of(runs, fn):
    return min(fn() for _ in range(runs))


def test_audio_batched_encode_is_faster_and_identical():
    config = AudioCodecConfig(bitrate_bps=45_000)
    speech = SpeechLikeSource(seed=3).read_duration(0.0, AUDIO_SECONDS)

    batched_frames = AudioCodec(config, batch=True).encode(speech)
    loop_frames = AudioCodec(config, batch=False).encode(speech)
    assert len(batched_frames) == len(loop_frames)
    for a, b in zip(batched_frames, loop_frames):
        assert a.q_step == b.q_step
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.values, b.values)
        assert a.size_bytes == b.size_bytes

    def timed(batch: bool) -> float:
        start = time.perf_counter()
        AudioCodec(config, batch=batch).encode(speech)
        return time.perf_counter() - start

    batched = _best_of(3, lambda: timed(True))
    loop = _best_of(3, lambda: timed(False))
    speedup = loop / batched
    assert speedup >= MIN_AUDIO_SPEEDUP, (
        f"batched audio encode only {speedup:.2f}x the per-frame loop "
        f"(batched {batched:.3f}s vs loop {loop:.3f}s)"
    )


def test_video_burst_paths_stay_within_noise_of_loop():
    stack = np.stack(LowMotionFeed(VIDEO_SPEC, seed=3).frames(VIDEO_FRAMES))
    config = VideoCodecConfig(gop_size=12)

    def encode(batch: bool):
        codec = VideoCodec(
            VIDEO_SPEC, config, target_bps=400_000, batch=batch
        )
        start = time.perf_counter()
        encoded = codec.encode_batch(stack)
        return time.perf_counter() - start, encoded

    batched_wall, encoded = min(
        (encode(True) for _ in range(3)), key=lambda r: r[0]
    )
    loop_wall, loop_encoded = min(
        (encode(False) for _ in range(3)), key=lambda r: r[0]
    )
    for a, b in zip(encoded, loop_encoded):
        assert a.q_step == b.q_step
        assert np.array_equal(a.values, b.values)
        assert a.size_bytes == b.size_bytes
    assert loop_wall / batched_wall >= MIN_VIDEO_RATIO, (
        f"batched video encode pathologically slow: "
        f"{batched_wall:.3f}s vs loop {loop_wall:.3f}s"
    )

    def decode(batch: bool) -> float:
        decoder = VideoDecoder(VIDEO_SPEC, batch=batch)
        start = time.perf_counter()
        decoder.decode_batch(encoded)
        return time.perf_counter() - start

    batched_decode = _best_of(3, lambda: decode(True))
    loop_decode = _best_of(3, lambda: decode(False))
    assert loop_decode / batched_decode >= MIN_VIDEO_RATIO, (
        f"batched video decode pathologically slow: "
        f"{batched_decode:.3f}s vs loop {loop_decode:.3f}s"
    )


def test_stats_only_decoder_is_cheaper_than_pixels():
    """pixels=False must do asymptotically less work (no transforms)."""
    codec = VideoCodec(VIDEO_SPEC, VideoCodecConfig(gop_size=12),
                       target_bps=400_000)
    encoded = codec.encode_batch(
        np.stack(LowMotionFeed(VIDEO_SPEC, seed=3).frames(VIDEO_FRAMES))
    )

    def timed(pixels: bool) -> float:
        decoder = VideoDecoder(VIDEO_SPEC, pixels=pixels)
        start = time.perf_counter()
        for frame in encoded:
            decoder.decode(frame)
        return time.perf_counter() - start

    stats = _best_of(3, lambda: timed(False))
    pixels = _best_of(3, lambda: timed(True))
    assert stats < pixels, (
        f"stats-only decode ({stats:.4f}s) not cheaper than pixel decode "
        f"({pixels:.4f}s)"
    )
