"""Packet-path fast lane: fused vs forced-slow throughput guard.

The PR 4 fast lane fuses the propagate->arrive->deliver chain into a
single delivery event on quiet paths (see :mod:`repro.net.routing`).
This guard runs the pinned packet-path benchmark both ways on the same
seed and asserts two things that are stable on any hardware:

* the fused path executes strictly fewer simulator events per packet
  (an exact, deterministic proxy for the heap work removed), and
* the fused path is measurably faster in wall-clock than the forced
  slow path on the same machine, same process, same workload.

Run with ``pytest benchmarks/test_perf_packet_path.py``; the tracked
absolute numbers live in ``BENCH_pr4.json`` (``repro bench``).
"""

from __future__ import annotations

from repro.bench import _packet_path_once

#: Workload size: large enough that interpreter warm-up noise washes
#: out, small enough for CI (<2 s per run).
PACKETS = 40_000

#: The fused path must beat the forced slow path by at least this
#: factor in wall-clock.  The measured gap is ~1.3x; 1.05x keeps the
#: guard meaningful without flaking on shared CI hardware.
MIN_SPEEDUP = 1.05


def test_fused_path_removes_events():
    fast = _packet_path_once(2_000, fast_lane=True)
    slow = _packet_path_once(2_000, fast_lane=False)
    # 2 events/packet fused (send + fused delivery) vs 4 slow
    # (send + propagate + arrive + deliver); exact, not statistical.
    assert fast["events"] == 2 * fast["packets"]
    assert slow["events"] == 4 * slow["packets"]
    assert fast["fused"] == fast["packets"]
    assert fast["sender_fused"] == fast["packets"]
    assert slow["fused"] == 0


def test_fused_path_is_faster_than_forced_slow():
    # Interleave and keep the best of three to shed scheduler noise.
    fast_wall = min(
        _packet_path_once(PACKETS, fast_lane=True)["wall_s"] for _ in range(3)
    )
    slow_wall = min(
        _packet_path_once(PACKETS, fast_lane=False)["wall_s"] for _ in range(3)
    )
    speedup = slow_wall / fast_wall
    assert speedup >= MIN_SPEEDUP, (
        f"fused path only {speedup:.2f}x the forced slow path "
        f"(fast {fast_wall:.3f}s vs slow {slow_wall:.3f}s)"
    )
