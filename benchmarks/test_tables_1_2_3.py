"""Tables 1-3: platform minimums, device specs, VM deployment.

These tables are configuration-derived; the benchmarks verify that the
library reproduces them from its models and print them in the paper's
layout.
"""

from repro.analysis.tables import TextTable
from repro.clients.android import ANDROID_DEVICES
from repro.net.regions import default_registry
from repro.platforms import make_platform
from repro.platforms.base import StreamLayer
from repro.platforms.ratecontrol import RateContext

from .conftest import run_once


def test_table1_min_bandwidth(benchmark, emit):
    """Table 1: one-on-one call rates by platform.

    The paper quotes operator-published minimums; our models' realised
    two-party rates must sit at or above them (the paper notes its
    measurements are "consistent with these requirements").
    """

    def build():
        table = TextTable(["System", "Model 1:1 rate", "Paper low", "Paper high"])
        published = {
            "zoom": ("600 Kbps", "--"),
            "webex": ("500 Kbps", "2.5 Mbps"),
            "meet": ("1 Mbps", "2.6 Mbps"),
        }
        rows = {}
        for name in ("zoom", "webex", "meet"):
            platform = make_platform(name)
            rate = platform.video_rates(RateContext(num_participants=2))
            mbps = rate[StreamLayer.HIGH] / 1e6
            low, high = published[name]
            table.add_row([name.capitalize(), f"{mbps:.2f} Mbps", low, high])
            rows[name] = mbps
        return table, rows

    table, rows = run_once(benchmark, build)
    emit("Table 1: minimum bandwidth for one-on-one calls", table.render())
    assert rows["zoom"] >= 0.6
    assert rows["webex"] >= 0.5
    assert rows["meet"] >= 1.0


def test_table2_devices(benchmark, emit):
    """Table 2: Android device characteristics."""

    def build():
        table = TextTable(
            ["Name", "Android Ver.", "CPU Info", "Memory", "Screen Resolution"]
        )
        for short in ("J3", "S10"):
            device = ANDROID_DEVICES[short]
            cores = {4: "Quad-core", 8: "Octa-core"}[device.cpu_cores]
            width, height = device.screen_resolution
            table.add_row(
                [
                    device.name,
                    device.android_version,
                    cores,
                    f"{device.memory_gb}GB",
                    f"{width}x{height}",
                ]
            )
        return table

    table = run_once(benchmark, build)
    emit("Table 2: Android devices", table.render())
    assert "Quad-core" in table.render()
    assert "1440x3040" in table.render()


def test_table3_regions(benchmark, emit):
    """Table 3: VM locations/counts for streaming lag testing."""

    def build():
        registry = default_registry()
        table = TextTable(["Region", "Name", "Count"])
        for group in ("US", "Europe"):
            for region in registry.by_group(group):
                table.add_row([group, region.name, region.vm_count])
        return registry, table

    registry, table = run_once(benchmark, build)
    emit("Table 3: VM locations", table.render())
    assert len(registry.vm_names("US")) == 7
    assert len(registry.vm_names("Europe")) == 7
