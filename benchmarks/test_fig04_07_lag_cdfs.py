"""Figures 4-7: streaming-lag CDFs for the four host scenarios.

Each benchmark regenerates one figure: the per-receiver lag CDFs for
Zoom, Webex and Meet with the meeting host in US-east, US-west, UK-west
or Switzerland, and asserts the paper's per-scenario bands.
"""

import pytest

from repro.analysis.figures import ascii_cdf
from repro.experiments.lag_study import run_lag_scenario

from .conftest import run_once

#: Paper bands for per-receiver *median* lags (ms), slightly widened:
#: medians depend on relay placement draws at benchmark scale.
EXPECTED_BANDS = {
    ("fig4", "zoom"): (5, 70),
    ("fig4", "webex"): (5, 80),
    ("fig4", "meet"): (25, 130),
    ("fig5", "zoom"): (5, 70),
    ("fig5", "webex"): (5, 85),
    ("fig5", "meet"): (25, 130),
    ("fig6", "zoom"): (80, 170),
    ("fig6", "webex"): (70, 125),
    ("fig6", "meet"): (15, 90),
    ("fig7", "zoom"): (80, 170),
    ("fig7", "webex"): (70, 125),
    ("fig7", "meet"): (15, 90),
}

SCENARIOS = {
    "fig4": ("US-East", "US", "Figure 4: lag CDF, host in US-east"),
    "fig5": ("US-West", "US", "Figure 5: lag CDF, host in US-west"),
    "fig6": ("UK-West", "Europe", "Figure 6: lag CDF, host in UK-west"),
    "fig7": ("CH", "Europe", "Figure 7: lag CDF, host in Switzerland"),
}


@pytest.mark.parametrize("figure", ["fig4", "fig5", "fig6", "fig7"])
def test_lag_cdf_figure(benchmark, emit, scale, figure):
    host, group, title = SCENARIOS[figure]

    def run():
        return {
            platform: run_lag_scenario(platform, host, group, scale=scale)
            for platform in ("zoom", "webex", "meet")
        }

    results = run_once(benchmark, run)

    body = []
    for platform, result in results.items():
        body.append(f"--- {platform} ---")
        body.append(ascii_cdf(result.lags_ms))
        lo, hi = result.lag_range_ms()
        body.append(f"median-lag band: {lo:.1f} - {hi:.1f} ms")
    emit(title, "\n".join(body))

    for platform, result in results.items():
        lo, hi = result.lag_range_ms()
        expected_lo, expected_hi = EXPECTED_BANDS[(figure, platform)]
        assert lo >= expected_lo, (platform, lo)
        assert hi <= expected_hi, (platform, hi)

    if figure == "fig5":
        # The Webex detour: a US-west peer suffers more than US-east.
        webex = results["webex"]
        assert webex.median_lag_ms("US-West2") > webex.median_lag_ms("US-East")
    if figure in ("fig6", "fig7"):
        # Finding-2: Meet's European presence beats the US-bound two.
        meet_hi = results["meet"].lag_range_ms()[1]
        assert meet_hi < results["zoom"].lag_range_ms()[0]
        assert meet_hi < results["webex"].lag_range_ms()[0]
