"""Figure 19 and Table 4: mobile resource consumption.

Regenerates the Android scenario sweep (CPU, data rate, battery) and
the conference-size stress table, asserting Finding-5's shapes.
"""

import pytest

from repro.analysis.tables import TextTable
from repro.experiments.mobile_study import (
    MOBILE_SCENARIOS,
    run_mobile_scenario,
    run_table4,
)

from .conftest import run_once


@pytest.fixture(scope="module")
def fig19():
    from .conftest import BENCH_SCALE

    results = {}
    for platform in ("zoom", "webex", "meet"):
        for scenario in MOBILE_SCENARIOS:
            results[(platform, scenario)] = run_mobile_scenario(
                platform, scenario, scale=BENCH_SCALE
            )
    return results


def test_fig19_mobile_resources(benchmark, emit, fig19):
    results = run_once(benchmark, lambda: fig19)

    table = TextTable(
        ["Platform", "Scenario", "S10 CPU%", "S10 Mbps",
         "J3 CPU%", "J3 Mbps", "J3 mAh"]
    )
    for (platform, scenario), result in results.items():
        s10, j3 = result.readings["S10"], result.readings["J3"]
        table.add_row(
            [platform, scenario,
             f"{s10.median_cpu_pct:.0f}", f"{s10.mean_rate_mbps:.2f}",
             f"{j3.median_cpu_pct:.0f}", f"{j3.mean_rate_mbps:.2f}",
             f"{j3.discharge_mah:.2f}"]
        )
    emit("Figure 19: mobile resource consumption", table.render())

    def cpu(platform, scenario, device="S10"):
        return results[(platform, scenario)].readings[device].median_cpu_pct

    def rate(platform, scenario, device="S10"):
        return results[(platform, scenario)].readings[device].mean_rate_mbps

    # (a) CPU: 2-3 full cores; Meet adds ~50% on the high-end device.
    for platform in ("zoom", "webex", "meet"):
        assert 120 <= cpu(platform, "LM", "J3") <= 280
    assert cpu("meet", "LM") > cpu("zoom", "LM") + 25

    # Gallery view halves Zoom's CPU, not Webex's or Meet's.
    assert cpu("zoom", "LM-View") < 0.75 * cpu("zoom", "LM")
    assert cpu("webex", "LM-View") > 0.8 * cpu("webex", "LM")

    # Screen-off: Zoom/Meet idle down, Webex stays ~125%.
    assert cpu("zoom", "LM-Off") < 60
    assert cpu("meet", "LM-Off") < 70
    assert cpu("webex", "LM-Off") > 100

    # (b) Rate: Meet most bandwidth-hungry; Webex adapts to the J3;
    # Zoom sticks to its default.
    assert rate("meet", "LM") > 1.5
    assert rate("webex", "HM", "J3") < 0.7 * rate("webex", "HM", "S10")
    assert 0.5 <= rate("zoom", "LM") <= 1.2
    # Screen off: only audio remains.
    for platform in ("zoom", "webex", "meet"):
        assert rate(platform, "LM-Off") < 0.25

    # (c) Battery: camera on costs most; screen-off saves ~half.
    for platform in ("zoom", "meet"):
        video = results[(platform, "LM-Video-View")].readings["J3"].discharge_mah
        lm = results[(platform, "LM")].readings["J3"].discharge_mah
        off = results[(platform, "LM-Off")].readings["J3"].discharge_mah
        assert video > lm > off
        assert off < 0.6 * lm


def test_table4_conference_size(benchmark, emit):
    from .conftest import BENCH_SCALE

    results = run_once(benchmark, run_table4, scale=BENCH_SCALE)

    table = TextTable(
        ["N", "Platform", "View", "Rate S10/J3 (Mbps)", "CPU S10/J3 (%)"]
    )
    for (platform, n, view), result in results.items():
        s10, j3 = result.readings["S10"], result.readings["J3"]
        table.add_row(
            [n, platform, view,
             f"{s10.mean_rate_mbps:.2f}/{j3.mean_rate_mbps:.2f}",
             f"{s10.median_cpu_pct:.0f}/{j3.median_cpu_pct:.0f}"]
        )
    emit("Table 4: data rate and CPU vs videoconference size",
         table.render())

    def rate(platform, n, view, device="S10"):
        return results[(platform, n, view)].readings[device].mean_rate_mbps

    def cpu(platform, n, view, device="S10"):
        return results[(platform, n, view)].readings[device].median_cpu_pct

    # Zoom gallery: twofold rate increase from N=3 to N=6 (4 tiles),
    # then flat to N=11; CPU flat in gallery.
    assert rate("zoom", 6, "Gallery") > 1.7 * rate("zoom", 3, "Gallery")
    assert abs(rate("zoom", 11, "Gallery") - rate("zoom", 6, "Gallery")) < 0.25
    assert abs(cpu("zoom", 11, "Gallery") - cpu("zoom", 6, "Gallery")) < 30

    # Webex full screen: per-device rates flat in N.
    assert abs(rate("webex", 11, "Full screen") - rate("webex", 3, "Full screen")) < 0.4
    assert rate("webex", 6, "Full screen", "J3") < 0.7 * rate(
        "webex", 6, "Full screen", "S10"
    )

    # Meet: rates high regardless of view; growth saturates by N=11
    # (UIs render at most four tiles).
    assert rate("meet", 3, "Full screen") > 1.5
    assert rate("meet", 11, "Full screen") < rate("meet", 6, "Full screen") + 0.5
