"""Timeline event overhead: dynamic vs static session cost.

A condition timeline adds a handful of boundary events (one per
compiled phase window plus a restore) to sessions that execute tens of
thousands of packet events, so the *scheduling* overhead of the
dynamics engine must be noise.  This benchmark runs the same session
twice -- static links vs a busy 8-phase timeline whose conditions are
all neutral, so both runs do identical media work -- and checks that
the added simulator events are <5% of the session's event count (an
exact, deterministic proxy for wall-time overhead) plus a generous
wall-time guard against accidental per-packet work sneaking into the
timeline path.

Run with ``pytest benchmarks/test_perf_dynamics.py --benchmark-only``.
"""

from __future__ import annotations

import time

from repro.core.session import SessionConfig
from repro.core.testbed import Testbed, TestbedConfig
from repro.net.dynamics import ConditionPhase, ConditionTimeline, LinkConditions

CLIENTS = ("US-East", "US-East2", "US-Central")

#: Phases in the busy timeline (every boundary is a simulator event).
PHASES = 8

#: The acceptance bound on added events (fraction of session events).
MAX_EVENT_OVERHEAD = 0.05


def _run_session(timeline: ConditionTimeline | None, scale):
    testbed = Testbed(TestbedConfig(seed=scale.seed))
    for name in CLIENTS:
        testbed.add_vm(name)
    config = SessionConfig(
        duration_s=scale.qoe_session_duration_s,
        feed="high",
        pad_fraction=0.15,
        content_spec=scale.content_spec,
        probes=False,
        record_video=True,
        session_index=0,
        feed_seed=scale.seed,
        timelines=None if timeline is None else {"US-East2": timeline},
    )
    testbed.run_session("zoom", list(CLIENTS), "US-East", config)
    return testbed.network.simulator.events_processed


def _neutral_timeline(duration_s: float) -> ConditionTimeline:
    return ConditionTimeline(
        phases=tuple(
            ConditionPhase(f"p{i}", duration_s / PHASES, LinkConditions())
            for i in range(PHASES)
        )
    )


def test_static_session(benchmark, scale):
    from .conftest import run_once

    events = run_once(benchmark, _run_session, None, scale)
    assert events > 1000


def test_dynamic_session(benchmark, scale):
    from .conftest import run_once

    timeline = _neutral_timeline(scale.qoe_session_duration_s)
    events = run_once(benchmark, _run_session, timeline, scale)
    assert events > 1000


def test_timeline_event_overhead_under_5_percent(scale):
    """The ISSUE 3 acceptance bound, measured deterministically."""
    timeline = _neutral_timeline(scale.qoe_session_duration_s)
    static_events = _run_session(None, scale)
    start = time.perf_counter()
    dynamic_events = _run_session(timeline, scale)
    dynamic_s = time.perf_counter() - start
    start = time.perf_counter()
    _run_session(None, scale)
    static_s = time.perf_counter() - start
    added = dynamic_events - static_events
    # The timeline itself contributes one event per phase boundary
    # plus the final restore.  Since PR 4, packets whose flight window
    # overlaps a registered boundary also travel the un-fused slow
    # path (that is what keeps dynamics sessions bit-identical with
    # the fast lane on), so each in-flight packet at a boundary may
    # add one more event; bound that by a small per-boundary budget
    # rather than asserting the boundary events alone.
    max_crossing_per_boundary = 16
    assert 0 < added <= (PHASES + 1) * (1 + max_crossing_per_boundary)
    assert added / static_events < MAX_EVENT_OVERHEAD
    # Coarse wall-time guard only: single runs on shared CI hardware
    # are noisy, but the timeline path must never add per-packet cost.
    assert dynamic_s < static_s * 1.5 + 0.5
