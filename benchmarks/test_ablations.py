"""Ablation benches for the design choices called out in DESIGN.md.

These vary one mechanism at a time and verify that the reproduced
findings depend on it the way the design claims:

* the 200-byte big-packet threshold of the lag detector,
* keyframe (GOP) spacing in the lag feed,
* the endpoint-selection policy (single relay vs distributed),
* the shaper's queue depth under overload.
"""

import numpy as np
import pytest

from repro.core.lag import LagDetector, measure_streaming_lag
from repro.core.session import SessionConfig
from repro.net.capture import Direction
from repro.core.testbed import Testbed, TestbedConfig
from repro.net.shaper import TokenBucketShaper
from repro.units import kbps

from .conftest import run_once


def flash_session(scale, gop_size=600, seed_offset=0):
    testbed = Testbed(TestbedConfig(seed=scale.seed + seed_offset))
    testbed.add_vm("US-East")
    testbed.add_vm("US-West")
    config = SessionConfig(
        duration_s=scale.lag_session_duration_s,
        feed="flash",
        pad_fraction=0.0,
        content_spec=scale.content_spec,
        probes=False,
        gop_size=gop_size,
    )
    return testbed.run_session(
        "webex", ["US-East", "US-West"], "US-East", config
    )


def test_ablation_lag_threshold(benchmark, emit, scale):
    """The detector is insensitive to the exact byte threshold.

    Flash bursts are MTU-sized while blank-frame packets are ~100
    bytes, so any threshold between those regimes finds the same
    onsets -- the property that makes the paper's 200-byte choice safe.
    """

    artifacts = run_once(benchmark, flash_session, scale)
    sender = artifacts.captures["US-East"]
    receiver = artifacts.captures["US-West"]

    counts = {}
    for threshold in (150, 200, 400, 800):
        detector = LagDetector(big_packet_bytes=threshold)
        lags = measure_streaming_lag(sender, receiver, detector)
        counts[threshold] = len(lags)
    emit(
        "Ablation: lag-detector threshold",
        "\n".join(f"{t:4d} B -> {n} matched lags" for t, n in counts.items()),
    )
    values = list(counts.values())
    assert max(values) - min(values) <= 1
    # An absurd threshold breaks detection, proving it is load-bearing.
    broken = LagDetector(big_packet_bytes=50_000)
    assert measure_streaming_lag(sender, receiver, broken) == []


def test_ablation_gop_size(benchmark, emit, scale):
    """Short GOPs inject keyframe bursts that masquerade as flashes.

    The lag protocol must use a long GOP; with a 12-frame GOP the
    codec's periodic keyframes of blank frames also exceed the big
    packet threshold, inflating burst counts.
    """

    def run():
        long_gop = flash_session(scale, gop_size=600)
        short_gop = flash_session(scale, gop_size=12, seed_offset=1)
        return long_gop, short_gop

    long_gop, short_gop = run_once(benchmark, run)
    detector = LagDetector()
    long_onsets = detector.burst_onsets(
        long_gop.captures["US-East"].time_size_series(Direction.OUT)
    )
    short_onsets = detector.burst_onsets(
        short_gop.captures["US-East"].time_size_series(Direction.OUT)
    )
    flashes = len(long_gop.content_feed.flash_times(scale.lag_session_duration_s))
    emit(
        "Ablation: GOP size in the lag feed",
        f"flashes: {flashes}, onsets with GOP=600: {len(long_onsets)}, "
        f"with GOP=12: {len(short_onsets)}",
    )
    assert abs(len(long_onsets) - flashes) <= 1


def test_ablation_endpoint_policy(benchmark, emit, scale):
    """Distributed endpoints beat a far relay for co-located peers.

    European Meet clients enjoy low lag *because* their endpoints are
    in-continent; forcing the same clients through Webex's US-east
    relay inflates lag several-fold (Finding-2's causal claim).
    """

    def run():
        from repro.experiments.lag_study import run_lag_scenario

        meet = run_lag_scenario("meet", "CH", "Europe", scale=scale)
        webex = run_lag_scenario("webex", "CH", "Europe", scale=scale)
        return meet, webex

    meet, webex = run_once(benchmark, run)
    meet_median = np.mean([np.median(v) for v in meet.lags_ms.values()])
    webex_median = np.mean([np.median(v) for v in webex.lags_ms.values()])
    emit(
        "Ablation: endpoint selection policy (EU clients)",
        f"distributed (Meet-style): {meet_median:.1f} ms\n"
        f"single US relay (Webex-style): {webex_median:.1f} ms",
    )
    assert webex_median > 1.7 * meet_median


def test_ablation_shaper_queue_depth(benchmark, emit):
    """Deeper queues trade drops for delay under overload."""

    def run():
        results = {}
        for depth_s in (0.05, 0.2, 0.8):
            shaper = TokenBucketShaper(
                rate_bps=kbps(500), burst_bytes=4000,
                max_queue_delay_s=depth_s,
            )
            delays = []
            for step in range(2000):
                now = step / 1000.0  # 1200-byte packet per ms ~ 9.6 Mbps
                release = shaper.submit(now, 1200)
                if release is not None:
                    delays.append(release - now)
            results[depth_s] = (
                shaper.stats.drop_fraction,
                float(np.mean(delays)) if delays else 0.0,
            )
        return results

    results = run_once(benchmark, run)
    emit(
        "Ablation: shaper queue depth under 19x overload",
        "\n".join(
            f"depth {d:4.2f}s -> drop {drop:.1%}, mean queue {delay*1e3:.0f} ms"
            for d, (drop, delay) in results.items()
        ),
    )
    drops = [results[d][0] for d in (0.05, 0.2, 0.8)]
    delays = [results[d][1] for d in (0.05, 0.2, 0.8)]
    assert drops[0] > drops[2] - 0.05  # all heavily dropping, but...
    assert delays[0] < delays[1] < delays[2]  # ...delay grows with depth
