#!/usr/bin/env python
"""Run the tracked performance benchmark suite from a checkout.

Thin wrapper over :mod:`repro.bench` (the same engine behind the
``repro bench`` CLI subcommand), kept here so the benchmark suite is
discoverable next to the per-figure pytest benchmarks::

    PYTHONPATH=src python benchmarks/run_bench.py --quick -o BENCH_ci.json
    PYTHONPATH=src python benchmarks/run_bench.py -o BENCH_pr4.json
    PYTHONPATH=src python benchmarks/run_bench.py --quick --check BENCH_pr4.json

The ``--check`` gate compares hardware-independent metrics (the
fast-vs-slow packet-path speedup ratio and the events-per-packet
budget) against a committed baseline and exits non-zero on a >20%
regression.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
