"""Figure 13: the padding workflow.

Regenerates the pad -> stream -> occlude -> record -> crop -> resize
pipeline and verifies the property the workflow exists for: client UI
widgets drawn over the recording never contaminate the scored content
region, while an unpadded feed *is* contaminated.
"""

import numpy as np

from repro.core.postprocess import prepare_recorded_frames
from repro.core.session import SessionConfig
from repro.core.testbed import Testbed, TestbedConfig
from repro.media.padding import PaddedSource, crop_padding
from repro.qoe.psnr import psnr

from .conftest import run_once


def test_fig13_padding_protects_content(benchmark, emit, scale):
    def run():
        testbed = Testbed(TestbedConfig(seed=scale.seed))
        testbed.add_vm("US-East")
        testbed.add_vm("US-East2")
        config = SessionConfig(
            duration_s=scale.qoe_session_duration_s,
            feed="low",
            pad_fraction=0.15,
            content_spec=scale.content_spec,
            probes=False,
            record_video=True,
            gop_size=30,
        )
        artifacts = testbed.run_session(
            "zoom", ["US-East", "US-East2"], "US-East", config
        )
        return artifacts

    artifacts = run_once(benchmark, run)
    recorder = artifacts.recorders["US-East2"]
    padded_feed = artifacts.padded_feed

    raw = recorder.frames[10]
    content = prepare_recorded_frames(padded_feed, [raw])[0]

    # Widgets exist in the raw recording (dark toolbar rows)...
    toolbar_region = raw[-int(raw.shape[0] * 0.1):, :]
    assert (toolbar_region < 60).mean() > 0.2
    # ...but the cropped content region scores cleanly.
    reference = padded_feed.content.frame(10)
    score_across_shifts = max(
        psnr(padded_feed.content.frame(i), content) for i in range(5, 16)
    )
    emit(
        "Figure 13: padding workflow",
        "\n".join(
            [
                f"recorded frame: {raw.shape}, content: {content.shape}",
                f"widget coverage in padding: "
                f"{(toolbar_region < 60).mean():.0%}",
                f"best content PSNR across shifts: "
                f"{score_across_shifts:.1f} dB",
            ]
        ),
    )
    assert content.shape == reference.shape
    assert score_across_shifts > 25
