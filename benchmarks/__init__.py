"""Per-figure reproduction benchmarks.

A package so the benchmark modules can use relative imports
(``from .conftest import run_once``) and the full suite collects under
a bare ``python -m pytest`` from the repo root.
"""
