"""Shared configuration for the per-figure benchmark harness.

Every benchmark regenerates one table or figure of the paper at the
``BENCH_SCALE`` profile (seconds per scenario instead of the paper's
hours) and prints the regenerated artifact.  Run with::

    pytest benchmarks/ --benchmark-only -s

Use :data:`repro.experiments.PAPER_SCALE` in the experiment drivers for
a full-scale validation run.
"""

from __future__ import annotations

import pytest

from repro.experiments.scale import ExperimentScale
from repro.media.frames import FrameSpec

#: The benchmark suite's scale: small frames, short sessions.
BENCH_SCALE = ExperimentScale(
    sessions=2,
    lag_session_duration_s=12.0,
    qoe_session_duration_s=8.0,
    content_spec=FrameSpec(128, 96, 12),
    probe_count=10,
    score_frames=24,
    seed=11,
)


@pytest.fixture
def scale():
    """The benchmark scale profile."""
    return BENCH_SCALE


@pytest.fixture
def emit(capsys):
    """Print a regenerated artifact to the real terminal."""

    def _emit(title: str, body: str) -> None:
        with capsys.disabled():
            print(f"\n=== {title} ===")
            print(body)

    return _emit


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
