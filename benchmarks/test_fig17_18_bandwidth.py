"""Figures 17-18: video and audio QoE under bandwidth constraints.

Regenerates the rate-limit sweeps (250 Kbps / 500 Kbps / 1 Mbps /
Infinite) and asserts the paper's personalities: Meet degrades most
gracefully, Webex collapses (video stalls/disappears at <= 1 Mbps and
its audio deteriorates), and Zoom/Meet audio stays essentially flat.
"""

import pytest

from repro.analysis.tables import TextTable
from repro.experiments.bandwidth_study import (
    RATE_LIMITS,
    limit_label,
    run_bandwidth_grid,
)

from .conftest import run_once


@pytest.fixture(scope="module")
def cap_grid():
    from .conftest import BENCH_SCALE

    # One session per cell at benchmark scale; the cell runner extends
    # session duration so adaptation reaches steady state.
    return run_bandwidth_grid(
        motion="high", scale=BENCH_SCALE, compute_vifp=False
    )


def cells_by_key(cells):
    return {(c.platform, limit_label(c.limit_bps)): c for c in cells}


def test_fig17_video_under_caps(benchmark, emit, cap_grid):
    cells = run_once(benchmark, lambda: cap_grid)
    grid = cells_by_key(cells)

    table = TextTable(
        ["Platform"] + [limit_label(l) for l in RATE_LIMITS]
    )
    for platform in ("zoom", "webex", "meet"):
        table.add_row(
            [platform]
            + [
                f"{grid[(platform, limit_label(l))].psnr_mean:.1f}"
                for l in RATE_LIMITS
            ]
        )
    emit("Figure 17: video PSNR under download rate limits", table.render())

    # Webex: "video frequently stalls and even completely disappears"
    # with caps of 1 Mbps or less.
    webex_1m = grid[("webex", "1Mbps")]
    assert webex_1m.psnr_mean < grid[("zoom", "1Mbps")].psnr_mean - 5
    assert webex_1m.psnr_mean < grid[("meet", "1Mbps")].psnr_mean - 5
    assert (
        grid[("webex", "500Kbps")].psnr_mean
        < grid[("webex", "Infinite")].psnr_mean - 8
    )

    # Zoom and Meet survive a 1 Mbps cap nearly unharmed, and never
    # collapse the way Webex does; Zoom shows its largest drop at the
    # tightest cap (the paper's "sudden drop" at 250 Kbps).
    for platform in ("zoom", "meet"):
        assert (
            grid[(platform, "1Mbps")].psnr_mean
            > grid[(platform, "Infinite")].psnr_mean - 6
        )
        assert grid[(platform, "250Kbps")].psnr_mean > 12
    assert (
        grid[("zoom", "250Kbps")].psnr_mean
        < grid[("zoom", "1Mbps")].psnr_mean - 1
    )


def test_fig18_audio_under_caps(benchmark, emit, cap_grid):
    cells = run_once(benchmark, lambda: cap_grid)
    grid = cells_by_key(cells)

    table = TextTable(
        ["Platform"] + [limit_label(l) for l in RATE_LIMITS]
    )
    for platform in ("zoom", "webex", "meet"):
        table.add_row(
            [platform]
            + [
                f"{grid[(platform, limit_label(l))].mos_lqo_mean:.2f}"
                for l in RATE_LIMITS
            ]
        )
    emit("Figure 18: audio MOS-LQO under download rate limits",
         table.render())

    # Zoom and Meet audio: "virtually constant" MOS under caps.
    for platform in ("zoom", "meet"):
        unlimited = grid[(platform, "Infinite")].mos_lqo_mean
        worst = min(
            grid[(platform, limit_label(l))].mos_lqo_mean
            for l in RATE_LIMITS
        )
        assert unlimited > 4.0
        assert worst > unlimited - 1.1

    # Webex audio deteriorates noticeably at 500 Kbps or less.
    webex_free = grid[("webex", "Infinite")].mos_lqo_mean
    webex_500 = grid[("webex", "500Kbps")].mos_lqo_mean
    webex_250 = grid[("webex", "250Kbps")].mos_lqo_mean
    assert webex_free > 4.0
    assert webex_500 < webex_free - 1.5
    assert webex_250 < webex_free - 1.5
