"""Batched vs per-frame QoE scoring microbenchmark.

Times the two entry points of the scoring engine on one recording's
worth of frames: the legacy shape (a Python loop of per-frame
``psnr``/``ssim``/``vifp`` calls, as the seed's ``score_video`` ran)
against the batched ``(T, H, W)`` kernels behind today's
:func:`repro.qoe.score_video`.  The series must agree to <= 1e-8
(bit-identical in practice); the timing delta is what ISSUE 2's
batching bought, and a regression here means a stack kernel has
quietly fallen back to per-frame behaviour.

Run with ``pytest benchmarks/test_perf_qoe_batch.py --benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.media.feeds import HighMotionFeed
from repro.qoe import (
    psnr,
    psnr_stack,
    ssim,
    ssim_stack,
    vifp,
    vifp_stack,
)

#: Frames scored per round -- one QoE recording at the quick scale.
FRAMES = 40


@pytest.fixture(scope="module")
def frame_pairs(scale):
    feed = HighMotionFeed(scale.content_spec)
    reference = np.stack(feed.frames(FRAMES))
    rng = np.random.default_rng(scale.seed)
    distorted = np.clip(
        reference.astype(np.float64) + rng.normal(0, 8, reference.shape),
        0,
        255,
    ).astype(np.uint8)
    return reference, distorted


@pytest.fixture(scope="module")
def scale():
    from .conftest import BENCH_SCALE

    return BENCH_SCALE


def _score_per_frame(reference, distorted):
    return (
        [psnr(r, d) for r, d in zip(reference, distorted)],
        [ssim(r, d) for r, d in zip(reference, distorted)],
        [vifp(r, d) for r, d in zip(reference, distorted)],
    )


def _score_batched(reference, distorted):
    return (
        psnr_stack(reference, distorted),
        ssim_stack(reference, distorted),
        vifp_stack(reference, distorted),
    )


def test_per_frame_scoring(benchmark, frame_pairs):
    from .conftest import run_once

    reference, distorted = frame_pairs
    series = run_once(benchmark, _score_per_frame, reference, distorted)
    assert len(series[0]) == FRAMES


def test_batched_scoring(benchmark, frame_pairs):
    from .conftest import run_once

    reference, distorted = frame_pairs
    series = run_once(benchmark, _score_batched, reference, distorted)
    assert len(series[0]) == FRAMES


def test_batched_agrees_with_per_frame(frame_pairs):
    """The ISSUE 2 acceptance bound, checked where it is benchmarked."""
    reference, distorted = frame_pairs
    per_frame = _score_per_frame(reference, distorted)
    batched = _score_batched(reference, distorted)
    for loop_series, stack_series in zip(per_frame, batched):
        assert np.abs(np.asarray(loop_series) - stack_series).max() <= 1e-8