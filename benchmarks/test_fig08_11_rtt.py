"""Figures 8-11: service proximity (RTT to service endpoints).

Regenerates the per-client RTT strips for the four host scenarios from
the same lag-study sessions, and asserts the architectural signatures:
Zoom/Webex RTTs track distance to the (US) relay while Meet RTTs are
uniformly small; Webex European RTTs are pinned at trans-Atlantic
values; Zoom European RTTs spread across relay-site bands.
"""

import numpy as np
import pytest

from repro.analysis.tables import TextTable
from repro.experiments.lag_study import run_lag_scenario

from .conftest import run_once

SCENARIOS = {
    "fig8": ("US-East", "US", "Figure 8: RTTs, host in US-east"),
    "fig9": ("US-West", "US", "Figure 9: RTTs, host in US-west"),
    "fig10": ("UK-West", "Europe", "Figure 10: RTTs, host in UK-west"),
    "fig11": ("CH", "Europe", "Figure 11: RTTs, host in Switzerland"),
}


@pytest.mark.parametrize("figure", ["fig8", "fig9", "fig10", "fig11"])
def test_rtt_figure(benchmark, emit, scale, figure):
    host, group, title = SCENARIOS[figure]

    def run():
        return {
            platform: run_lag_scenario(platform, host, group, scale=scale)
            for platform in ("zoom", "webex", "meet")
        }

    results = run_once(benchmark, run)

    table = TextTable(["Client"] + list(results))
    receivers = sorted(next(iter(results.values())).rtts_ms)
    mean_rtts = {p: {} for p in results}
    for receiver in receivers:
        row = [receiver]
        for platform, result in results.items():
            value = float(np.nanmean(result.rtts_ms[receiver]))
            mean_rtts[platform][receiver] = value
            row.append(f"{value:5.1f}")
        table.add_row(row)
    emit(title, table.render())

    meet_values = list(mean_rtts["meet"].values())
    if group == "US":
        # Meet's distributed endpoints: uniformly low RTTs (Fig. 8c).
        assert max(meet_values) < 35
        # Zoom/Webex RTT spread reflects distance to the relay.
        for platform in ("zoom", "webex"):
            values = list(mean_rtts[platform].values())
            assert max(values) - min(values) > 20
    else:
        # Fig. 10c/11c: Meet stays in-continent.
        assert max(meet_values) < 30
        # Fig. 10b/11b: Webex pinned at trans-Atlantic RTTs.
        webex_values = list(mean_rtts["webex"].values())
        assert all(70 <= v <= 120 for v in webex_values)
        # Fig. 10a/11a: Zoom at or above trans-Atlantic, up to west-coast.
        zoom_values = list(mean_rtts["zoom"].values())
        assert all(75 <= v <= 170 for v in zoom_values)
